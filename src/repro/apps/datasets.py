"""Synthetic input generators for the evaluated workloads.

The paper uses CIFAR-10 images and 3-D point clouds (paper Table 1).  We
have no network access, so inputs are deterministic synthetic stand-ins
with the same shapes and value ranges: input *content* only sets work
sizes for these pipelines - it does not change the scheduler's behaviour -
so the substitution is benign (recorded in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError

#: CIFAR-10 geometry.
CIFAR_SHAPE = (3, 32, 32)
CIFAR_CLASSES = 10


def cifar_like_image(seed: int) -> np.ndarray:
    """One deterministic CIFAR-shaped image, values in [0, 1].

    Images are low-frequency noise (smoothed uniform) so convolutions see
    realistic spatial correlation rather than white noise.
    """
    rng = np.random.default_rng(100_000 + seed)
    raw = rng.random((3, 36, 36), dtype=np.float32)
    # Cheap 5x5 box smoothing via cumulative sums.
    smooth = raw
    for axis in (1, 2):
        smooth = (
            np.take(smooth, range(0, 32), axis=axis)
            + np.take(smooth, range(1, 33), axis=axis)
            + np.take(smooth, range(2, 34), axis=axis)
            + np.take(smooth, range(3, 35), axis=axis)
            + np.take(smooth, range(4, 36), axis=axis)
        ) / 5.0
    return np.ascontiguousarray(smooth, dtype=np.float32)


def cifar_like_batch(seed: int, batch: int) -> np.ndarray:
    """A deterministic batch of CIFAR-shaped images."""
    if batch < 1:
        raise KernelError("batch must be >= 1")
    return np.stack(
        [cifar_like_image(seed * 131 + b) for b in range(batch)]
    )


def point_cloud(seed: int, n_points: int) -> np.ndarray:
    """A deterministic structured point cloud in the unit cube.

    Mimics an indoor LiDAR sweep: points concentrate on a handful of
    planar "surfaces" plus uniform clutter, which produces the skewed
    Morton-code distributions (duplicates, deep subtrees) that make the
    Octree workload's irregular stages interesting.
    """
    if n_points < 1:
        raise KernelError("n_points must be >= 1")
    rng = np.random.default_rng(200_000 + seed)
    n_surface = int(n_points * 0.7)
    n_clutter = n_points - n_surface

    n_planes = 5
    plane_axis = rng.integers(0, 3, size=n_planes)
    plane_offset = rng.random(n_planes)
    counts = rng.multinomial(n_surface, [1.0 / n_planes] * n_planes)
    pieces = []
    for plane in range(n_planes):
        pts = rng.random((counts[plane], 3))
        pts[:, plane_axis[plane]] = plane_offset[plane] + rng.normal(
            0.0, 0.01, size=counts[plane]
        )
        pieces.append(pts)
    pieces.append(rng.random((n_clutter, 3)))
    cloud = np.concatenate(pieces).astype(np.float32)
    np.clip(cloud, 0.0, 1.0, out=cloud)
    rng.shuffle(cloud)
    return cloud
