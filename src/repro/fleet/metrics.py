"""Deterministic fleet metrics and the final fleet report.

Pure arithmetic over the router's recorded state - no wall clock, no
RNG reads - so a fleet run's report is byte-identical across repeats
with the same seed (the property the fleet soak test and the CI
``fleet-chaos`` job assert by diffing serialized reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.serve.metrics import percentile
from repro.fleet.tenant import FleetTenant


@dataclass(frozen=True)
class FleetTenantMetrics:
    """Latency + lifecycle summary of one fleet tenant."""

    tenant: str
    status: str
    windows_served: int
    migrations: int
    reschedules: int
    shards: Sequence[str]
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    max_latency_s: float

    @classmethod
    def from_tenant(cls, tenant: FleetTenant) -> "FleetTenantMetrics":
        samples = tenant.samples
        if not samples:
            return cls(
                tenant=tenant.name,
                status=tenant.status,
                windows_served=0,
                migrations=tenant.migrations,
                reschedules=tenant.reschedules,
                shards=tuple(tenant.shard_history),
                mean_latency_s=0.0,
                p50_latency_s=0.0,
                p95_latency_s=0.0,
                max_latency_s=0.0,
            )
        return cls(
            tenant=tenant.name,
            status=tenant.status,
            windows_served=tenant.windows_served,
            migrations=tenant.migrations,
            reschedules=tenant.reschedules,
            shards=tuple(tenant.shard_history),
            mean_latency_s=sum(samples) / len(samples),
            p50_latency_s=percentile(samples, 50.0),
            p95_latency_s=percentile(samples, 95.0),
            max_latency_s=max(samples),
        )

    def to_dict(self) -> Dict[str, object]:
        # Same "n/a" convention as the serve layer: no served windows
        # means no latency distribution to summarize.
        def _latency(value: float) -> object:
            if self.windows_served == 0:
                return "n/a"
            return round(value, 9)

        return {
            "tenant": self.tenant,
            "status": self.status,
            "windows_served": self.windows_served,
            "migrations": self.migrations,
            "reschedules": self.reschedules,
            "shards": list(self.shards),
            "mean_latency_s": _latency(self.mean_latency_s),
            "p50_latency_s": _latency(self.p50_latency_s),
            "p95_latency_s": _latency(self.p95_latency_s),
            "max_latency_s": _latency(self.max_latency_s),
        }


def surviving_p95(tenants: Mapping[str, FleetTenant]) -> float:
    """p95 over the merged per-item samples of tenants that *survived*
    the run (completed every window).  0.0 when nothing survived."""
    samples: List[float] = []
    for tenant in tenants.values():
        if tenant.status == "completed":
            samples.extend(tenant.samples)
    if not samples:
        return 0.0
    return percentile(samples, 95.0)


def surviving_p95_slowdown(tenants: Mapping[str, FleetTenant]) -> float:
    """p95 of surviving tenants' per-segment slowdown ratios - the
    fleet's headline number.

    Absolute latency mixes what the fleet controls (failure response)
    with what it does not (app heterogeneity, the PU class each
    placement drew), so the headline normalizes every sample to its
    placement segment's first-window baseline
    (:meth:`FleetTenant.slowdowns`).  A fleet that leaves tenants on a
    browned-out shard shows up here directly; one that migrates them
    promptly stays near 1.0.  0.0 when nothing survived.
    """
    ratios: List[float] = []
    for tenant in tenants.values():
        if tenant.status == "completed":
            ratios.extend(tenant.slowdowns())
    if not ratios:
        return 0.0
    return percentile(ratios, 95.0)


@dataclass(frozen=True)
class FleetReport:
    """The serialized outcome of one fleet run."""

    seed: int
    ticks: int
    n_shards: int
    failover_enabled: bool
    tenants: Mapping[str, FleetTenantMetrics]
    #: shard -> {state, breaker, generation, windows_served}
    shards: Mapping[str, Mapping[str, object]]
    timeline: Sequence[Mapping[str, object]]
    chaos_events: Sequence[Mapping[str, object]]
    surviving_p95_s: float
    surviving_p95_slowdown: float
    plan_cache: Mapping[str, int]
    #: Blame-decomposition summary (``FleetConfig.attribution``); None
    #: - and absent from the serialized form - when attribution is off.
    attribution: Optional[Mapping[str, object]] = None
    #: Burn-rate alert records (``FleetConfig.burn``); None when burn
    #: alerting is off (an empty list means "armed, nothing burned").
    alerts: Optional[Sequence[Mapping[str, object]]] = None

    @property
    def counts(self) -> Dict[str, int]:
        """Fleet event kind -> occurrences (failovers, migrations,
        shed, breaker transitions, ...)."""
        out: Dict[str, int] = {}
        for entry in self.timeline:
            kind = str(entry["event"])
            out[kind] = out.get(kind, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        """Stable dict for :func:`repro.serialization.write_json_report`.

        Every mapping is emitted in sorted key order so two runs with
        the same seed serialize byte-identically.
        """
        survivors = [m for m in self.tenants.values()
                     if m.status == "completed"]
        out: Dict[str, object] = {
            "seed": self.seed,
            "ticks": self.ticks,
            "n_shards": self.n_shards,
            "failover_enabled": self.failover_enabled,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "surviving_tenants": len(survivors),
            "surviving_p95_s": (round(self.surviving_p95_s, 9)
                                if survivors else "n/a"),
            "surviving_p95_slowdown": (
                round(self.surviving_p95_slowdown, 9)
                if survivors else "n/a"),
            "tenants": {
                name: self.tenants[name].to_dict()
                for name in sorted(self.tenants)
            },
            "shards": {
                name: dict(self.shards[name])
                for name in sorted(self.shards)
            },
            "timeline": list(self.timeline),
            "chaos_events": list(self.chaos_events),
            "plan_cache": dict(self.plan_cache),
        }
        if self.attribution is not None:
            out["attribution"] = dict(self.attribution)
        if self.alerts is not None:
            out["alerts"] = [dict(alert) for alert in self.alerts]
        return out
