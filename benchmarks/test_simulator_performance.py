"""Benchmark for the DES hot path (autotuning re-runs the simulator
hundreds of times, so per-phase cost is the level-3 bottleneck).

Before memoization, ``_noise_scale`` built a fresh blake2b digest and
``default_rng`` per (task, stage) phase entry - ~15 us each, ~40 ms of
pure RNG-construction overhead per 300-task AlexNet run, paid again on
*every* run of the same executor.  With the per-executor noise cache a
warm run skips all of it (measured locally: 55 ms cold vs 23 ms warm
for 300 tasks x 9 stages).
"""

import time

import pytest

from repro.apps import build_alexnet_sparse
from repro.core import Chunk
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import get_platform

N_TASKS = 300


@pytest.fixture(scope="module")
def make_executor():
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    chunks = [Chunk(0, 5, "big"),
              Chunk(5, application.num_stages, "gpu")]

    def build():
        return SimulatedPipelineExecutor(application, chunks, platform)

    return build


def test_simulated_run_wall_time(benchmark, make_executor):
    executor = make_executor()
    result = benchmark(executor.run, N_TASKS)
    assert result.n_tasks == N_TASKS
    # Generous absolute ceiling for slow CI machines; the paper-scale
    # autotuning campaign runs ~20 of these back to back.
    assert benchmark.stats["mean"] < 0.25


def test_noise_cache_makes_reruns_cheaper(make_executor):
    """A warm executor must beat a cold one: re-running the same
    schedule (exactly what autotuning and adaptive windows do) skips
    every digest + RNG construction."""
    cold = make_executor()
    start = time.perf_counter()
    cold.run(N_TASKS)
    cold_s = time.perf_counter() - start

    warm_runs = []
    for _ in range(3):
        start = time.perf_counter()
        cold.run(N_TASKS)
        warm_runs.append(time.perf_counter() - start)
    warm_s = min(warm_runs)
    print(f"\ncold run {cold_s * 1e3:.1f} ms, "
          f"best warm run {warm_s * 1e3:.1f} ms "
          f"({cold_s / warm_s:.2f}x)")
    assert warm_s < cold_s
