"""Pytest root conftest: make ``src/`` importable without installation.

The offline environment lacks the ``wheel`` package needed for
``pip install -e .``; this mirrors an editable install.
"""

import os
import sys

SRC = os.path.join(os.path.dirname(__file__), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
