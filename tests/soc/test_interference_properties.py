"""Property-based invariants of the interference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import DvfsCurve, InterferenceModel
from repro.soc.pu import BIG, GPU

loads = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
betas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
demands = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@pytest.fixture(scope="module")
def model():
    return InterferenceModel(
        dram_bw_gbps=30.0,
        dvfs={
            BIG: DvfsCurve(speed_at_full_load=0.7),
            GPU: DvfsCurve(speed_at_full_load=1.5),
        },
    )


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(load_a=loads, load_b=loads)
    def test_throttled_class_slows_monotonically_with_load(
        self, model, load_a, load_b
    ):
        lo, hi = sorted((load_a, load_b))
        assert model.compute_speed(BIG, hi) <= model.compute_speed(
            BIG, lo
        ) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(load_a=loads, load_b=loads)
    def test_boosted_class_speeds_monotonically_with_load(
        self, model, load_a, load_b
    ):
        lo, hi = sorted((load_a, load_b))
        assert model.compute_speed(GPU, hi) >= model.compute_speed(
            GPU, lo
        ) - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(demand=demands, extra_a=demands, extra_b=demands)
    def test_more_contention_never_grants_more_bandwidth(
        self, model, demand, extra_a, extra_b
    ):
        lo, hi = sorted((extra_a, extra_b))
        factor_lo = model.bandwidth_factor(demand, demand + lo)
        factor_hi = model.bandwidth_factor(demand, demand + hi)
        assert factor_hi <= factor_lo + 1e-12


class TestBounds:
    @settings(max_examples=80, deadline=None)
    @given(beta=betas, load=loads, demand=demands, extra=demands)
    def test_multiplier_bounded_by_components(self, model, beta, load,
                                              demand, extra):
        multiplier = model.speed_multiplier(
            BIG, memory_boundedness=beta, demand_gbps=demand,
            total_demand_gbps=demand + extra, co_load=load,
        )
        compute = model.compute_speed(BIG, load)
        bandwidth = model.bandwidth_factor(demand, demand + extra)
        assert min(compute, bandwidth) - 1e-9 <= multiplier
        assert multiplier <= max(compute, bandwidth) + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(load=loads, demand=demands, extra=demands)
    def test_pure_compute_ignores_bandwidth(self, model, load, demand,
                                            extra):
        multiplier = model.speed_multiplier(
            BIG, memory_boundedness=0.0, demand_gbps=demand,
            total_demand_gbps=demand + extra, co_load=load,
        )
        assert multiplier == pytest.approx(
            model.compute_speed(BIG, load)
        )

    @settings(max_examples=80, deadline=None)
    @given(load=loads, demand=demands, extra=demands)
    def test_pure_memory_ignores_dvfs(self, model, load, demand, extra):
        multiplier = model.speed_multiplier(
            BIG, memory_boundedness=1.0, demand_gbps=demand,
            total_demand_gbps=demand + extra, co_load=load,
        )
        assert multiplier == pytest.approx(
            model.bandwidth_factor(demand, demand + extra)
        )

    @settings(max_examples=80, deadline=None)
    @given(beta=betas, load=loads, demand=demands, extra=demands)
    def test_multiplier_positive(self, model, beta, load, demand, extra):
        multiplier = model.speed_multiplier(
            GPU, memory_boundedness=beta, demand_gbps=demand,
            total_demand_gbps=demand + extra, co_load=load,
        )
        assert multiplier > 0.0
