"""Lock-order tracking and potential-deadlock detection (opt-in).

Classic lock-order analysis: every time a thread *attempts* to acquire
a tracked lock while holding others, the tracker adds "held -> wanted"
edges to a global acquisition-order graph.  If adding an edge closes a
cycle, two code paths take the same locks in opposite orders - a
potential deadlock even if this particular run never wedged - and a
``lock-order-cycle`` violation is recorded.

Edges are added at the acquisition *attempt* (before blocking), so an
actual deadlock is still reported rather than silently hanging the
detector.  Condition variables built on a :class:`TrackedLock` are
tracked through their ``wait()`` release/re-acquire cycle for free,
because :class:`threading.Condition` drives the lock through the same
``acquire``/``release`` entry points.

Tracking binds at lock *construction*: :func:`checked_lock` returns a
plain ``threading.Lock`` when the checker is disabled, so the hot paths
pay nothing unless ``REPRO_CHECK=1`` was set when the runtime objects
were built.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set, Union

from repro.analysis import runtime_checks as _checks


class LockOrderTracker:
    """Global acquisition-order graph over named locks."""

    def __init__(self) -> None:
        # Internal mutex only; deliberately untracked.
        self._mutex = threading.Lock()
        self._held: Dict[int, List[str]] = {}
        self._edges: Dict[str, Set[str]] = {}
        self._reported: Set[frozenset] = set()

    # -- lock side -----------------------------------------------------
    def note_acquiring(self, name: str) -> None:
        """A thread is about to (possibly block to) acquire ``name``."""
        ident = threading.get_ident()
        with self._mutex:
            held = self._held.get(ident, ())
            for other in held:
                if other == name:
                    continue  # condition re-acquire of the same lock
                self._edges.setdefault(other, set()).add(name)
                if self._reaches(name, other):
                    self._report_cycle(other, name)

    def note_acquired(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            self._held.setdefault(ident, []).append(name)

    def note_released(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            held = self._held.get(ident)
            if held and name in held:
                held.reverse()
                held.remove(name)  # drop the most recent acquisition
                held.reverse()

    # -- graph side ----------------------------------------------------
    def _reaches(self, start: str, goal: str) -> bool:
        """Whether ``goal`` is reachable from ``start`` in the graph."""
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False

    def _report_cycle(self, held: str, wanted: str) -> None:
        signature = frozenset((held, wanted))
        if signature in self._reported:
            return
        self._reported.add(signature)
        _checks.record_violation(
            _checks.LOCK_ORDER, where=wanted,
            detail=(f"acquiring {wanted!r} while holding {held!r}, but "
                    f"the opposite order {wanted!r} -> {held!r} was also "
                    "observed: potential deadlock cycle"),
        )

    def edges(self) -> Dict[str, Set[str]]:
        """Snapshot of the acquisition-order graph (for reports)."""
        with self._mutex:
            return {a: set(bs) for a, bs in self._edges.items()}

    def reset(self) -> None:
        """Forget all state (between independent scenarios/tests)."""
        with self._mutex:
            self._held.clear()
            self._edges.clear()
            self._reported.clear()


_TRACKER = LockOrderTracker()


def lock_tracker() -> LockOrderTracker:
    """The process-wide lock-order tracker."""
    return _TRACKER


class TrackedLock:
    """A ``threading.Lock`` veneer that feeds the order tracker.

    Exposes the ``acquire``/``release``/context-manager protocol that
    ``threading.Condition`` requires of a custom lock, so conditions
    built on it are tracked through ``wait()`` as well.
    """

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _TRACKER.note_acquiring(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _TRACKER.note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        _TRACKER.note_released(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TrackedLock({self.name!r})"


def checked_lock(name: str) -> Union[threading.Lock, TrackedLock]:
    """A lock for runtime objects: tracked when the checker is enabled
    at construction time, a plain ``threading.Lock`` otherwise."""
    if _checks.ENABLED:
        return TrackedLock(name)
    return threading.Lock()
