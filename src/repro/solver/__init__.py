"""A small constraint-programming solver.

This package stands in for the z3 SMT solver used by the paper's
BT-Optimizer (section 3.3).  It supports the exact constraint shapes of the
BetterTogether formulation - exactly-one (C1), implications (C2),
pseudo-boolean bounds (C3a/C3b, C5), and objective minimization (O1) via
branch-and-bound - behind a declarative :class:`Model` API.
"""

from repro.solver.constraints import (
    UNASSIGNED,
    AtMostOne,
    Clause,
    Constraint,
    ExactlyOne,
    LinearGE,
    LinearLE,
    implication,
)
from repro.solver.literals import BoolVar, Literal, as_literal
from repro.solver.model import Model, Solution
from repro.solver.search import Solver, SolverStats

__all__ = [
    "UNASSIGNED",
    "AtMostOne",
    "BoolVar",
    "Clause",
    "Constraint",
    "ExactlyOne",
    "LinearGE",
    "LinearLE",
    "Literal",
    "Model",
    "Solution",
    "Solver",
    "SolverStats",
    "as_literal",
    "implication",
]
