"""Pipeline memory accounting.

Multi-buffering (paper section 3.4) trades DRAM for overlap: ``depth``
TaskObjects circulate, each carrying every buffer the application needs
end-to-end, all pre-allocated.  On memory-constrained edge devices the
deployment question "how many TaskObjects can I afford?" is as real as
the latency question; this module answers it from an application's task
factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.stage import Application
from repro.errors import PipelineError


@dataclass(frozen=True)
class MemoryReport:
    """DRAM footprint of a pipeline deployment.

    Attributes:
        per_task_bytes: One TaskObject's buffers.
        depth: TaskObjects in flight.
        total_bytes: ``per_task_bytes * depth``.
        buffer_bytes: Per-buffer breakdown (largest first).
    """

    per_task_bytes: int
    depth: int
    buffer_bytes: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        return self.per_task_bytes * self.depth

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    def largest_buffers(self, count: int = 3):
        """The ``count`` biggest buffers - the first candidates when a
        footprint must shrink."""
        ranked = sorted(
            self.buffer_bytes.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:count]


def estimate_pipeline_memory(application: Application,
                             depth: int) -> MemoryReport:
    """Footprint of running ``application`` with ``depth`` TaskObjects.

    Requires the application to provide a task factory; buffer sizes are
    taken from a representative task (they are pre-allocated at maximum
    size by construction, so one sample is exact).
    """
    if depth < 1:
        raise PipelineError("depth must be >= 1")
    if application.make_task is None:
        raise PipelineError(
            f"{application.name!r} has no task factory to size buffers from"
        )
    sample = application.make_task(0)
    buffer_bytes = {
        name: int(np.asarray(array).nbytes)
        for name, array in sample.items()
    }
    return MemoryReport(
        per_task_bytes=sum(buffer_bytes.values()),
        depth=depth,
        buffer_bytes=buffer_bytes,
    )


def max_depth_within(application: Application,
                     budget_bytes: int) -> int:
    """The largest multi-buffering depth fitting a DRAM budget (>= 1
    would exceed it -> 0, meaning the application cannot run at all)."""
    report = estimate_pipeline_memory(application, depth=1)
    if report.per_task_bytes <= 0:
        raise PipelineError("application tasks occupy no memory")
    return budget_bytes // report.per_task_bytes
