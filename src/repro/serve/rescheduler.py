"""Online rescheduling: drift detection and live candidate re-ranking.

The offline flow freezes one schedule per tenant; the serving layer
cannot afford that, because contention changes whenever a tenant
arrives, finishes, or is evicted - and when outside load (injected
drift) leans on a PU class.  The rescheduler closes the loop the same
way the paper's level 3 does: never re-profile online, *re-rank the
cached candidates* under the measured conditions.

Per window and per tenant:

1. **Classify** the measured latency against the tenant's two
   profiles.  ``position = (measured/isolated - 1) / (span - 1)``
   places it on the isolated (0.0) .. interference-heavy (1.0) axis;
   past the midpoint the tenant is in the ``interference`` regime.
2. **Detect drift**: the measurement exceeding the post-deployment
   baseline by ``drift_threshold`` arms the rescheduler.
3. **Re-rank** the cached candidates that fit the tenant's partition
   plus currently-free PUs, scored by the same blend the admission
   controller uses (per-chunk isolated->interference interpolation by
   external DVFS co-load, plus fair-share time-sharing on classes the
   external load touches directly).  A strictly better candidate is
   deployed; otherwise the server's patience counter keeps running and
   eventually triggers the eviction fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.optimizer import ScheduleCandidate
from repro.core.plan_cache import CachedPlan
from repro.core.schedule import Schedule
from repro.errors import ServeError
from repro.serve.tenant import TenantRecord
from repro.soc.interference import ExternalLoad, external_co_load
from repro.soc.platform import Platform

HOLD = "hold"
SWITCH = "switch"
EVICT = "evict"

ISOLATED_REGIME = "isolated"
INTERFERENCE_REGIME = "interference"


@dataclass(frozen=True)
class RescheduleAction:
    """What the control loop should do about one drifted tenant."""

    kind: str  # HOLD | SWITCH | EVICT
    reason: str
    candidate: Optional[ScheduleCandidate] = None
    predicted_latency_s: float = 0.0


class OnlineRescheduler:
    """Drift detector + candidate re-ranker for running tenants.

    Args:
        platform: The shared virtual SoC.
        drift_threshold: Measured/baseline ratio that arms
            rescheduling (e.g. 1.2 = 20% above the post-deploy
            baseline).
        min_gain: Relative improvement a challenger candidate must
            predict before a switch is worth the disruption.
        patience: Consecutive drifted windows without a viable switch
            before the eviction fallback fires.

    Note: the admission controller's partition-width cap deliberately
    does NOT bind here.  The cap is a packing-fairness rule for
    *arrivals*; once contention drifts, annexing currently-free PU
    classes is the whole point of rescheduling - they are free exactly
    because admission packing left slack, and the no-oversubscription
    invariant still holds (re-checked by the placement map on every
    reassign).
    """

    def __init__(
        self,
        platform: Platform,
        drift_threshold: float = 1.2,
        min_gain: float = 0.02,
        patience: int = 2,
    ):
        if drift_threshold <= 1.0:
            raise ServeError("drift_threshold must be > 1.0")
        if not 0.0 <= min_gain < 1.0:
            raise ServeError("min_gain must be in [0, 1)")
        if patience < 1:
            raise ServeError("patience must be >= 1")
        self.platform = platform
        self.drift_threshold = drift_threshold
        self.min_gain = min_gain
        self.patience = patience
        self._total_classes = len(platform.schedulable_classes())

    # ------------------------------------------------------------------
    def classify(self, record: TenantRecord, measured_s: float) -> str:
        """Place a measurement on the isolated..interference axis."""
        if record.plan is None or record.schedule is None:
            raise ServeError(
                f"tenant {record.name!r} has no deployed plan to "
                "classify against"
            )
        isolated = record.plan.isolated_prediction(record.schedule)
        span = record.plan.contention_span(record.schedule)
        if isolated <= 0 or span <= 1.0:
            return ISOLATED_REGIME
        position = (measured_s / isolated - 1.0) / (span - 1.0)
        return (
            INTERFERENCE_REGIME if position >= 0.5 else ISOLATED_REGIME
        )

    def drifted(self, record: TenantRecord, measured_s: float) -> bool:
        """Has this window drifted from the post-deploy baseline?"""
        baseline = record.baseline_latency_s
        if baseline is None or baseline <= 0:
            return False
        return measured_s > baseline * self.drift_threshold

    # ------------------------------------------------------------------
    def score(
        self,
        plan: CachedPlan,
        schedule: Schedule,
        external: ExternalLoad,
    ) -> float:
        """Modelled per-task latency of ``schedule`` under ``external``.

        Per chunk: interpolate each table entry between isolated and
        interference-heavy by the chunk's DVFS co-load (internal busy
        chunks + external fractions), then stretch by fair-share
        time-sharing where the external load sits on the chunk's own
        class.  The pipeline latency is the bottleneck chunk, as ever.
        """
        app = plan.application
        iso_times = schedule.chunk_times(app, plan.isolated)
        intf_times = schedule.chunk_times(app, plan.interference)
        busy_classes = set(schedule.pu_classes_used)
        worst = 0.0
        for chunk, t_iso in iso_times.items():
            total_other = self._total_classes - 1
            w = external_co_load(
                busy_classes, chunk.pu_class, external, total_other
            )
            t = t_iso + w * (intf_times[chunk] - t_iso)
            share = external.busy.get(chunk.pu_class, 0.0)
            if share > 0.0:
                t *= 1.0 + share
            worst = max(worst, t)
        return worst

    def rerank(
        self,
        record: TenantRecord,
        external: ExternalLoad,
        free_classes: FrozenSet[str],
    ) -> RescheduleAction:
        """Pick the control action for one drifted tenant.

        The search space is the tenant's cached candidates restricted
        to PUs it may legally occupy: its own partition plus whatever
        is currently free (never a co-tenant's PUs - the
        no-oversubscription invariant survives rescheduling).
        """
        if record.plan is None or record.schedule is None:
            raise ServeError(
                f"tenant {record.name!r} is not deployed; nothing to "
                "re-rank"
            )
        allowed = frozenset(record.partition) | free_classes
        required = record.spec.required_classes
        fitting = [
            c for c in record.plan.optimization.candidates
            if set(c.schedule.pu_classes_used) <= allowed
            and required <= set(c.schedule.pu_classes_used)
        ]
        if not fitting:
            return RescheduleAction(
                EVICT,
                "no cached candidate fits the tenant's partition plus "
                f"free PUs {sorted(free_classes)}",
            )
        current_score = self.score(
            record.plan, record.schedule, external
        )
        best = min(
            fitting,
            key=lambda c: (
                self.score(record.plan, c.schedule, external), c.rank
            ),
        )
        best_score = self.score(record.plan, best.schedule, external)
        if (
            best.schedule.assignments == record.schedule.assignments
            or best_score >= current_score * (1.0 - self.min_gain)
        ):
            return RescheduleAction(
                HOLD,
                "no cached candidate predicts a "
                f">{self.min_gain:.0%} gain under the current load",
                predicted_latency_s=current_score,
            )
        return RescheduleAction(
            SWITCH,
            f"candidate rank {best.rank} predicts "
            f"{best_score / current_score:.2f}x of current latency "
            "under the measured contention",
            candidate=best,
            predicted_latency_s=best_score,
        )
