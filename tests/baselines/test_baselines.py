"""Tests for homogeneous/data-parallel baselines and prior-work flows."""

import math

import pytest

from repro.apps import build_octree_application
from repro.baselines import (
    cpu_only_schedule,
    data_parallel_baseline,
    gpu_only_schedule,
    isolated_latency_only_candidates,
    latency_only_candidates,
    measure_baselines,
    measure_schedule,
    split_evenness,
)
from repro.core.profiler import INTERFERENCE, ISOLATED, BTProfiler
from repro.errors import ProfilingError
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


class TestHomogeneous:
    def test_schedules_are_single_chunk(self, app):
        cpu = cpu_only_schedule(app)
        gpu = gpu_only_schedule(app)
        assert cpu.pu_classes_used == (BIG,)
        assert gpu.pu_classes_used == (GPU,)
        assert len(cpu.chunks()) == 1

    def test_measure_baselines_positive(self, app, pixel):
        result = measure_baselines(app, pixel, n_tasks=10)
        assert result.cpu_latency_s > 0
        assert result.gpu_latency_s > 0
        assert result.best_latency_s == min(
            result.cpu_latency_s, result.gpu_latency_s
        )

    def test_octree_on_pixel_cpu_wins(self, app, pixel):
        result = measure_baselines(app, pixel, n_tasks=10)
        assert result.best_name == "cpu"

    def test_measurements_deterministic(self, app, pixel):
        a = measure_baselines(app, pixel, n_tasks=10)
        b = measure_baselines(app, pixel, n_tasks=10)
        assert a.cpu_latency_s == b.cpu_latency_s

    def test_as_row_format(self, app, pixel):
        cpu, gpu = measure_baselines(app, pixel, n_tasks=10).as_row()
        float(cpu), float(gpu)  # parseable milliseconds

    def test_measure_schedule_matches_baseline_helper(self, app, pixel):
        direct = measure_schedule(app, cpu_only_schedule(app), pixel,
                                  n_tasks=10)
        via_helper = measure_baselines(app, pixel, n_tasks=10).cpu_latency_s
        assert direct == pytest.approx(via_helper)


class TestDataParallel:
    def test_fractions_sum_to_one(self, app, pixel):
        result = data_parallel_baseline(app, pixel)
        for fractions in result.fractions.values():
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_faster_pu_gets_larger_fraction(self, app, pixel):
        result = data_parallel_baseline(app, pixel)
        sort = result.fractions["sort"]
        # The GPU is terrible at sorting: it must get a small share.
        assert sort[GPU] < sort[BIG]

    def test_task_latency_is_stage_sum(self, app, pixel):
        result = data_parallel_baseline(app, pixel)
        assert result.task_latency_s == pytest.approx(
            sum(result.per_stage_s.values())
        )

    def test_split_evenness_flags_skew(self, app, pixel):
        evenness = split_evenness(data_parallel_baseline(app, pixel))
        # At least one stage has a heavily skewed split (the paper's
        # argument: some PU is forced onto poorly-suited work).
        assert max(evenness.values()) > 3.0

    def test_pipelining_beats_data_parallel_on_octree(self, app, pixel):
        """The paper's core argument in section 1."""
        from repro.core import BetterTogether

        plan = BetterTogether(pixel, repetitions=3, k=6,
                              eval_tasks=8).run(app)
        dp = data_parallel_baseline(app, pixel)
        assert plan.measured_latency_s < dp.task_latency_s


class TestPriorModels:
    def test_latency_only_ignores_gapness(self, app, pixel):
        table = BTProfiler(pixel, repetitions=3).profile(app)
        restricted = table.restricted(pixel.schedulable_classes())
        filtered = latency_only_candidates(app, restricted, k=5)
        assert filtered.gap_threshold_s == math.inf

    def test_isolated_flow_uses_isolated_table(self, app, pixel):
        result = isolated_latency_only_candidates(app, pixel, k=5,
                                                  repetitions=3)
        assert len(result.candidates) == 5

    def test_isolated_flow_rejects_interference_table(self, app, pixel):
        table = BTProfiler(pixel, repetitions=3).profile(
            app, mode=INTERFERENCE
        )
        with pytest.raises(ProfilingError):
            isolated_latency_only_candidates(app, pixel, table=table)

    def test_isolated_flow_accepts_precollected_table(self, app, pixel):
        table = BTProfiler(pixel, repetitions=3).profile(app, mode=ISOLATED)
        result = isolated_latency_only_candidates(app, pixel, k=4,
                                                  table=table)
        assert len(result.candidates) == 4

    def test_isolated_predictions_are_optimistic_for_cpu_chunks(
        self, app, pixel
    ):
        """Isolated profiles miss CPU slowdowns under co-run, so the
        isolated-predicted latency underestimates the measured pipeline
        (the paper's 4.95 ms-predicted vs 7.77 ms-measured motivation)."""
        result = isolated_latency_only_candidates(app, pixel, k=1,
                                                  repetitions=3)
        best = result.candidates[0]
        if len(best.schedule.chunks()) < 2:
            pytest.skip("latency-only picked a homogeneous schedule")
        measured = measure_schedule(app, best.schedule, pixel, n_tasks=10)
        assert measured > best.predicted_latency_s
