"""Evaluation: metrics, analysis tools, and per-figure experiment
drivers."""

from repro.eval.analysis import (
    ScheduleExplanation,
    SpeedupBounds,
    StageAffinity,
    explain_schedule,
    format_affinity_report,
    format_explanation,
    speedup_bounds,
    stage_affinity_report,
)
from repro.eval.metrics import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    pearson_correlation,
    safe_pearson,
    speedup,
)

__all__ = [
    "ScheduleExplanation",
    "SpeedupBounds",
    "StageAffinity",
    "arithmetic_mean",
    "explain_schedule",
    "format_affinity_report",
    "format_explanation",
    "speedup_bounds",
    "stage_affinity_report",
    "format_table",
    "geometric_mean",
    "pearson_correlation",
    "safe_pearson",
    "speedup",
]
