"""Tests for the determinism-flow analysis (``python -m repro flow``)."""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.astcache import ast_cache
from repro.analysis.flow import analyze_paths, analyze_source
from repro.analysis.linter import changed_files, lint_paths
from repro.analysis.taint import ALL_FLOW_RULES, RULE_SUMMARIES
from repro.cli import main
from repro.errors import AnalysisError

FIXTURES = Path(__file__).resolve().parent.parent / "flow_fixtures"
REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def flow_snippet(source, path="x/module.py"):
    report = analyze_source(textwrap.dedent(source), path)
    return report.findings


def rules_of(findings):
    return [f.rule_id for f in findings]


class TestSourcesAndSinks:
    def test_direct_wall_clock_to_report(self):
        findings = flow_snippet("""
            import time

            def dump(path):
                write_json_report(path, {"t": time.time()})
        """)
        assert rules_of(findings) == ["FLOW-WALL-CLOCK"]

    def test_sink_payload_index_is_respected(self):
        # The *path* argument of write_json_report is not the payload.
        findings = flow_snippet("""
            import time

            def dump(payload):
                write_json_report(f"report-{time.time()}.json", payload)
        """)
        assert findings == []

    def test_constructor_sink(self):
        findings = flow_snippet("""
            import random

            def build():
                return SimulatedRunResult(latency=random.random())
        """)
        assert rules_of(findings) == ["FLOW-GLOBAL-RNG"]

    def test_env_subscript_read(self):
        findings = flow_snippet("""
            import os

            def dump(path):
                write_json_report(path, {"home": os.environ["HOME"]})
        """)
        assert rules_of(findings) == ["FLOW-ENV-READ"]

    def test_monotonic_is_not_a_source(self):
        findings = flow_snippet("""
            import time

            def dump(path):
                write_json_report(path, {"m": time.monotonic()})
        """)
        assert findings == []


class TestInterprocedural:
    def test_taint_through_return_chain(self):
        findings = flow_snippet("""
            import time

            def source():
                return time.perf_counter()

            def relay():
                return {"v": source()}

            def dump(path):
                write_json_report(path, relay())
        """)
        assert rules_of(findings) == ["FLOW-WALL-CLOCK"]
        # Reported at the sink, not the source.
        assert findings[0].line == 11

    def test_taint_through_parameter(self):
        # The sink is inside the callee; the source is in the caller.
        findings = flow_snippet("""
            import time

            def persist(path, payload):
                write_json_report(path, payload)

            def run(path):
                persist(path, {"t": time.time()})
        """)
        assert rules_of(findings) == ["FLOW-WALL-CLOCK"]

    def test_taint_through_container_mutation(self):
        findings = flow_snippet("""
            import random

            def fill(out):
                out.append(random.random())

            def run():
                rows = []
                fill(rows)
                return artifact_sha256(rows)
        """)
        assert rules_of(findings) == ["FLOW-GLOBAL-RNG"]

    def test_clean_helper_stays_clean(self):
        findings = flow_snippet("""
            def helper(x):
                return {"x": x}

            def run(path):
                write_json_report(path, helper(3))
        """)
        assert findings == []


class TestLaundering:
    def test_sorted_clears_unordered(self):
        findings = flow_snippet("""
            def dump(path, names):
                pool = set(names)
                atomic_write_text(path, "\\n".join(sorted(pool)))
        """)
        assert findings == []

    def test_unordered_iteration_is_flagged_without_sorted(self):
        findings = flow_snippet("""
            def dump(path, names):
                lines = []
                for name in set(names):
                    lines.append(name)
                atomic_write_text(path, "\\n".join(lines))
        """)
        assert rules_of(findings) == ["FLOW-UNORDERED-ITER"]

    def test_seeded_rng_is_deterministic(self):
        findings = flow_snippet("""
            import numpy as np

            def dump(path, seed):
                rng = np.random.default_rng(seed)
                write_json_report(path, {"draw": rng.normal()})
        """)
        assert findings == []

    def test_unseeded_default_rng_is_a_source(self):
        findings = flow_snippet("""
            import numpy as np

            def dump(path):
                rng = np.random.default_rng()
                write_json_report(path, {"draw": rng.normal()})
        """)
        assert rules_of(findings) == ["FLOW-GLOBAL-RNG"]

    def test_order_insensitive_reductions_clear(self):
        findings = flow_snippet("""
            def dump(path, xs):
                pool = set(xs)
                write_json_report(path, {"n": len(pool),
                                         "lo": min(pool)})
        """)
        assert findings == []


class TestSuppressions:
    def test_justified_suppression_silences(self):
        report = analyze_source(textwrap.dedent("""
            import time

            def dump(path):
                # bt-flow: disable=FLOW-WALL-CLOCK -- build stamp wanted
                write_json_report(path, {"t": time.time()})
        """), "x/m.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_unjustified_suppression_keeps_finding_and_flags(self):
        report = analyze_source(textwrap.dedent("""
            import time

            def dump(path):
                # bt-flow: disable=FLOW-WALL-CLOCK
                write_json_report(path, {"t": time.time()})
        """), "x/m.py")
        assert sorted(rules_of(report.findings)) == [
            "BAD-SUPPRESSION", "FLOW-WALL-CLOCK",
        ]
        assert report.suppressed == 0

    def test_lint_suppression_does_not_cover_flow(self):
        report = analyze_source(textwrap.dedent("""
            import time

            def dump(path):
                # bt-lint: disable=WALL-CLOCK -- measured on purpose
                write_json_report(path, {"t": time.time()})
        """), "x/m.py")
        assert rules_of(report.findings) == ["FLOW-WALL-CLOCK"]


class TestClockDomains:
    def test_additive_mix_flags(self):
        findings = flow_snippet("""
            def total(warmup_ticks, window_s):
                return warmup_ticks + window_s
        """)
        assert rules_of(findings) == ["CLOCK-MIX"]

    def test_comparison_mix_flags(self):
        findings = flow_snippet("""
            def late(elapsed_s, max_ticks):
                return elapsed_s > max_ticks
        """)
        assert rules_of(findings) == ["CLOCK-MIX"]

    def test_multiplication_is_a_conversion(self):
        findings = flow_snippet("""
            def to_seconds(n_ticks, tick_period_s):
                return n_ticks * tick_period_s
        """)
        assert findings == []

    def test_same_domain_arithmetic_is_clean(self):
        findings = flow_snippet("""
            def span(start_s, end_s, n_ticks, warmup_ticks):
                return (end_s - start_s, n_ticks - warmup_ticks)
        """)
        assert findings == []

    def test_call_boundary_mismatch(self):
        findings = flow_snippet("""
            def advance(sim_time_s):
                return sim_time_s

            def run(budget_ticks):
                return advance(budget_ticks)
        """)
        assert rules_of(findings) == ["CLOCK-CALL"]

    def test_keyword_mismatch_on_unresolved_call(self):
        findings = flow_snippet("""
            def run(soc, budget_ticks):
                soc.advance(until_s=budget_ticks)
        """)
        assert rules_of(findings) == ["CLOCK-CALL"]


class TestFixtures:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES])

    def test_every_seeded_violation_detected(self, report):
        by_file = {}
        for finding in report.findings:
            name = Path(finding.path).name
            by_file.setdefault(name, []).append(finding.rule_id)
        assert sorted(by_file["bad_attribution.py"]) == [
            "FLOW-WALL-CLOCK",
        ]
        assert sorted(by_file["bad_clocks.py"]) == [
            "CLOCK-CALL", "CLOCK-CALL", "CLOCK-MIX", "CLOCK-MIX",
        ]
        assert sorted(by_file["bad_container.py"]) == [
            "FLOW-GLOBAL-RNG", "FLOW-THREAD-ID", "FLOW-UNORDERED-ITER",
        ]
        assert sorted(by_file["bad_cross_function.py"]) == [
            "FLOW-ENV-READ", "FLOW-WALL-CLOCK",
        ]
        assert sorted(by_file["bad_traffic.py"]) == [
            "CLOCK-MIX", "FLOW-GLOBAL-RNG",
        ]
        assert sorted(by_file["suppressed.py"]) == [
            "BAD-SUPPRESSION", "FLOW-WALL-CLOCK",
        ]

    def test_good_file_is_clean(self, report):
        assert not any(
            Path(f.path).name == "good_laundering.py"
            for f in report.findings
        )

    def test_justified_suppression_counted(self, report):
        assert report.suppressed == 1

    def test_report_shape(self, report):
        data = report.to_dict()
        assert data["tool"] == "repro-flow"
        assert data["files_checked"] == 7
        assert not data["clean"]
        assert sum(data["counts"].values()) == len(report.findings)


class TestBaseline:
    def test_repro_package_is_flow_clean(self):
        report = analyze_paths([REPRO_SRC])
        assert report.clean, [f.format() for f in report.findings]


class TestSharedCache:
    def test_lint_and_flow_share_parses(self):
        cache = ast_cache()
        cache.clear()
        lint_paths([FIXTURES])
        misses_after_lint = cache.misses
        analyze_paths([FIXTURES])
        # Flow re-used every parse the linter produced.
        assert cache.misses == misses_after_lint
        assert cache.hits >= misses_after_lint


class TestCli:
    def test_strict_exit_one_on_findings(self, capsys):
        assert main(["flow", str(FIXTURES), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "repro-flow:" in out

    def test_non_strict_exit_zero(self, capsys):
        assert main(["flow", str(FIXTURES)]) == 0

    def test_missing_target_is_tool_failure(self, capsys):
        assert main(["flow", "/no/such/flow/target"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "AnalysisError"

    def test_json_format_counts(self, capsys):
        assert main(["flow", str(FIXTURES), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "repro-flow"
        assert data["counts"]["CLOCK-MIX"] == 3
        assert {r["rule"] for r in data["rules"]} == set(ALL_FLOW_RULES)

    def test_list_rules(self, capsys):
        assert main(["flow", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_FLOW_RULES:
            assert rule_id in out
            assert RULE_SUMMARIES[rule_id] in out

    def test_out_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "flow.json"
        assert main(["flow", str(FIXTURES / "bad_clocks.py"),
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        data = json.loads(out_file.read_text())
        assert data["counts"] == {"CLOCK-MIX": 2, "CLOCK-CALL": 2}


class TestChanged:
    @pytest.fixture()
    def git_repo(self, tmp_path, monkeypatch):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True,
                capture_output=True,
                env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t",
                     "GIT_COMMITTER_EMAIL": "t@t",
                     "HOME": str(tmp_path), "PATH": "/usr/bin:/bin"},
            )

        git("init", "-q")
        clean = tmp_path / "clean.py"
        clean.write_text("import time\n\n"
                         "def dump(path):\n"
                         "    write_json_report(path, {'t': time.time()})\n")
        git("add", "clean.py")
        git("commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_changed_picks_up_new_and_modified_files(self, git_repo):
        (git_repo / "fresh.py").write_text(
            "import random\n\n"
            "def dump(path):\n"
            "    write_json_report(path, {'r': random.random()})\n"
        )
        files = changed_files(base="HEAD")
        assert [p.name for p in files] == ["fresh.py"]

    def test_cli_changed_analyzes_only_the_diff(self, git_repo, capsys):
        # The committed file has a violation, but it is unchanged:
        # --changed must not look at it.
        assert main(["flow", "--changed", "--strict"]) == 0
        (git_repo / "fresh.py").write_text(
            "import random\n\n"
            "def dump(path):\n"
            "    write_json_report(path, {'r': random.random()})\n"
        )
        assert main(["flow", "--changed", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "clean.py" not in out

    def test_changed_outside_git_is_structured_error(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(AnalysisError):
            changed_files(base="HEAD")
