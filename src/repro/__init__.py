"""BetterTogether reproduction: interference-aware fine-grained software
pipelining on heterogeneous SoCs (IISWC 2025).

Public API tour:

* ``repro.soc`` - the virtual-SoC substrate (four calibrated platforms).
* ``repro.apps`` - AlexNet-dense, AlexNet-sparse, Octree applications.
* ``repro.core`` - Stage/Application abstractions, BT-Profiler,
  BT-Optimizer, autotuner, and the :class:`~repro.core.BetterTogether`
  end-to-end framework.
* ``repro.runtime`` - BT-Implementer: threaded (functional) and
  discrete-event (performance) pipeline back-ends.
* ``repro.baselines`` - homogeneous/data-parallel baselines and
  prior-work modeling flows.
* ``repro.eval`` - metrics and the per-figure experiment drivers.
"""

from repro.core import BetterTogether, DeploymentPlan, Schedule
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["BetterTogether", "DeploymentPlan", "ReproError", "__version__"]
