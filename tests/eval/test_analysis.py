"""Tests for the schedule-analysis tools."""

import pytest

from repro.core import Application, Schedule, Stage
from repro.core.profiler import ProfilingTable
from repro.errors import SchedulingError
from repro.eval import (
    explain_schedule,
    format_affinity_report,
    format_explanation,
    speedup_bounds,
    stage_affinity_report,
)
from repro.soc import WorkProfile


@pytest.fixture
def case():
    app = Application(
        "demo",
        [Stage.model_only(f"s{i}", WorkProfile(flops=1.0, bytes_moved=1.0))
         for i in range(3)],
    )
    entries = {
        ("s0", "big"): 1.0, ("s0", "gpu"): 4.0,
        ("s1", "big"): 6.0, ("s1", "gpu"): 2.0,
        ("s2", "big"): 3.0, ("s2", "gpu"): 3.0,
    }
    table = ProfilingTable(
        application="demo", platform="test", mode="interference",
        entries=entries, stage_names=("s0", "s1", "s2"),
        pu_classes=("big", "gpu"),
    )
    return app, table


class TestAffinity:
    def test_best_and_worst(self, case):
        app, table = case
        report = stage_affinity_report(app, table)
        by_stage = {entry.stage: entry for entry in report}
        assert by_stage["s0"].best_pu == "big"
        assert by_stage["s0"].worst_pu == "gpu"
        assert by_stage["s0"].spread == pytest.approx(4.0)
        assert by_stage["s1"].best_pu == "gpu"

    def test_format(self, case):
        app, table = case
        text = format_affinity_report(stage_affinity_report(app, table))
        assert "spread" in text
        assert "4.0x" in text


class TestExplanation:
    def test_breakdown_and_bottleneck(self, case):
        app, table = case
        schedule = Schedule.from_assignments(["big", "gpu", "gpu"])
        explanation = explain_schedule(app, schedule, table)
        assert explanation.predicted_latency_s == pytest.approx(5.0)
        assert explanation.bottleneck_chunk == "s1..s2"
        assert explanation.gapness_s == pytest.approx(4.0)
        # serial = 1 + 2 + 3 on the assigned PUs
        assert explanation.serial_latency_s == pytest.approx(6.0)
        assert explanation.pipelining_gain == pytest.approx(6.0 / 5.0)

    def test_fractions_sum_sanely(self, case):
        app, table = case
        schedule = Schedule.from_assignments(["big", "gpu", "gpu"])
        explanation = explain_schedule(app, schedule, table)
        fractions = [row[3] for row in explanation.chunk_rows]
        assert max(fractions) == pytest.approx(1.0)

    def test_format(self, case):
        app, table = case
        schedule = Schedule.from_assignments(["big", "gpu", "gpu"])
        text = format_explanation(explain_schedule(app, schedule, table))
        assert "bottleneck" in text
        assert "pipelining gain" in text


class TestSpeedupBounds:
    def test_bounds_computed(self, case):
        app, table = case
        bounds = speedup_bounds(app, table)
        # best serial: big = 1+6+3 = 10, gpu = 4+2+3 = 9 -> 9.
        assert bounds.best_serial_s == pytest.approx(9.0)
        # per-stage best: 1, 2, 3 -> ideal = max(3, 6/2) = 3.
        assert bounds.ideal_parallel_s == pytest.approx(3.0)
        assert bounds.max_speedup == pytest.approx(3.0)

    def test_bound_dominates_any_real_schedule(self, case):
        app, table = case
        bounds = speedup_bounds(app, table)
        from repro.core.schedule import enumerate_schedules

        for schedule in enumerate_schedules(3, ("big", "gpu")):
            latency = schedule.predicted_latency(app, table)
            assert latency >= bounds.ideal_parallel_s - 1e-12
