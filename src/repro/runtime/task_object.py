"""TaskObject: everything one streaming input needs, pre-allocated.

Paper section 3.4: a TaskObject holds all memory buffers and metadata
required to run an application end-to-end - unified buffers, host/device
scratch, and scalar constants - allocated once and recycled between tasks
so the steady-state pipeline never allocates.

The object behaves like a mutable mapping from buffer name to the numpy
array (the *unified* view), which is the interface the compute kernels
consume; richer access (scoped views, attach hints) goes through
:meth:`buffer`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, MutableMapping, Optional

import numpy as np

from repro.analysis import runtime_checks as _checks
from repro.errors import PipelineError
from repro.runtime.usm import UsmBuffer


class TaskObject(MutableMapping):
    """A recyclable container of buffers and constants for one task."""

    def __init__(self, task_id: int = 0):
        self.task_id = task_id
        self.sequence = task_id  # updated on every recycle
        self._buffers: Dict[str, UsmBuffer] = {}
        self._constants: Dict[str, object] = {}
        self._generation = 0
        self._released = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _insert(self, buffer: UsmBuffer) -> UsmBuffer:
        """Register a buffer, checking aliasing under ``REPRO_CHECK``.

        Two buffers of one TaskObject sharing storage breaks the
        multi-buffer lifetime model: a chunk writing one silently
        clobbers the other mid-pipeline.
        """
        if _checks.ENABLED:
            for other in self._buffers.values():
                if buffer.shares_storage(other):
                    _checks.record_violation(
                        _checks.BUFFER_ALIAS,
                        where=f"TaskObject {self.task_id}",
                        detail=(f"buffers {buffer.name!r} and "
                                f"{other.name!r} alias the same "
                                "storage"),
                    )
        self._buffers[buffer.name] = buffer
        return buffer

    def allocate(self, name: str, shape, dtype, scope: str = "unified") -> UsmBuffer:
        """Pre-allocate a named buffer (refuses duplicates)."""
        if name in self._buffers:
            raise PipelineError(f"buffer {name!r} already allocated")
        return self._insert(
            UsmBuffer(name, tuple(np.atleast_1d(shape).tolist())
                      if not isinstance(shape, tuple) else shape,
                      dtype, scope=scope)
        )

    def adopt(self, name: str, array: np.ndarray) -> UsmBuffer:
        """Wrap an existing array's shape/dtype as a unified buffer and
        copy its contents in (used when loading inputs)."""
        buffer = self.allocate(name, array.shape, array.dtype)
        np.copyto(buffer.host_view(), array)
        return buffer

    def wrap(self, name: str, array: np.ndarray,
             scope: str = "unified") -> UsmBuffer:
        """Adopt an existing array *zero-copy* as a named buffer (the
        UMA adoption path; the checker flags aliasing against the
        task's other buffers)."""
        if name in self._buffers:
            raise PipelineError(f"buffer {name!r} already allocated")
        return self._insert(UsmBuffer.wrap(name, array, scope=scope))

    def set_constant(self, name: str, value) -> None:
        """Attach a scalar parameter (e.g. input dimensions)."""
        self._check_live(f"set_constant({name!r})")
        self._constants[name] = value

    def constant(self, name: str):
        """Read a scalar parameter."""
        try:
            return self._constants[name]
        except KeyError:
            raise PipelineError(f"no constant {name!r}") from None

    @property
    def constants(self) -> Mapping[str, object]:
        return dict(self._constants)

    # ------------------------------------------------------------------
    # Mapping interface: kernels index buffers by name.
    # ------------------------------------------------------------------
    def buffer(self, name: str) -> UsmBuffer:
        """The named UsmBuffer object (for scoped views/hints)."""
        self._check_live(f"buffer({name!r})")
        try:
            return self._buffers[name]
        except KeyError:
            raise PipelineError(f"no buffer {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.buffer(name).host_view()

    def __setitem__(self, name: str, array: np.ndarray) -> None:
        if name in self._buffers:
            target = self.buffer(name).host_view()
            np.copyto(target, array)
        else:
            self.adopt(name, np.asarray(array))

    def __delitem__(self, name: str) -> None:
        del self._buffers[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def synchronize_for(self, pu_class: str,
                        names: Optional[Mapping] = None) -> None:
        """Issue coherence hints for the buffers a chunk is about to use
        (dispatcher step 2 in paper section 3.4)."""
        targets = names if names is not None else list(self._buffers)
        for name in targets:
            self.buffer(name).attach_async(pu_class)

    def recycle(self, new_sequence: int) -> None:
        """Reset for reuse by a subsequent task (dispatcher recycling).

        Recycling a *released* TaskObject is a lifetime bug - the
        executor only recycles live objects still circulating through
        the queues - so the checker reports it before reviving.
        """
        self._check_live(f"recycle({new_sequence})")
        self.sequence = new_sequence
        self._generation += 1

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Retire the task and all its buffers (end of its last use).

        Under ``REPRO_CHECK=1`` any later buffer or constant access is
        recorded as a ``use-after-release`` violation - the Python
        stand-in for the C++ runtime freeing the TaskObject's memory.
        Idempotent.
        """
        self._released = True
        for buffer in self._buffers.values():
            buffer.release()

    def _check_live(self, operation: str) -> None:
        if self._released and _checks.ENABLED:
            _checks.record_violation(
                _checks.USE_AFTER_RELEASE,
                where=f"TaskObject {self.task_id}",
                detail=f"{operation} on a released task object",
            )

    def total_bytes(self) -> int:
        """Total bytes across all buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TaskObject(id={self.task_id}, seq={self.sequence}, "
            f"{len(self._buffers)} buffers, {self.total_bytes()} bytes)"
        )
