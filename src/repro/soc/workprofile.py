"""Work characterization consumed by the analytical cost model.

The paper treats kernels as black boxes and only ever observes wall-clock
time.  Our virtual SoC needs *something* to turn a kernel invocation into a
time, so every kernel in :mod:`repro.kernels` describes one invocation with
a :class:`WorkProfile`: how much arithmetic it does, how much memory it
moves, how parallel/divergent/irregular it is.  The cost model
(:mod:`repro.soc.cost_model`) combines a profile with a processing-unit
description to produce an isolated execution time; the interference model
then perturbs it when other PUs are busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import KernelError


@dataclass(frozen=True)
class WorkProfile:
    """One kernel invocation, characterized for the cost model.

    Attributes:
        flops: Useful arithmetic operations performed (floating point or
            integer; the model does not distinguish).
        bytes_moved: DRAM traffic in bytes (reads + writes), assuming the
            working set misses in cache.
        parallelism: Maximum number of hardware threads the kernel can keep
            busy (e.g. ``n`` for a DOALL loop over ``n`` elements, a small
            number for a serial traversal).
        parallel_fraction: Amdahl fraction of the work that parallelizes.
        divergence: [0, 1] - how much control flow diverges between
            neighbouring work items.  Hurts SIMT machines (GPUs) badly and
            out-of-order CPUs mildly.
        irregularity: [0, 1] - how irregular the memory access pattern is
            (pointer chasing, scattered gathers).  Reduces achieved
            bandwidth and compute efficiency; big OoO cores tolerate it
            best.
        cpu_efficiency: Implementation-quality factor for the OpenMP-style
            CPU kernel, as a fraction of the cluster's achievable peak.
            Mobile CPU kernels in the paper are plain OpenMP loops (Fig. 3),
            not hand-tiled GEMMs, so dense kernels carry small values here.
        gpu_efficiency: Same for the Vulkan kernel.
        gpu_cuda_efficiency: Optional override used on CUDA devices -
            mature CUDA library kernels (CUB radix sort, device-wide
            scans) are far better optimized than hand-written mobile
            Vulkan compute shaders, which is why the Jetson's GPU wins
            the Octree workload while the mobile GPUs lose it (Table 3).
            ``None`` means "same as gpu_efficiency".
        gpu_launches: Number of device kernel launches one invocation
            issues (multi-pass algorithms such as radix sort launch many,
            paying per-launch overhead each time).
    """

    flops: float
    bytes_moved: float
    parallelism: float = 1.0
    parallel_fraction: float = 1.0
    divergence: float = 0.0
    irregularity: float = 0.0
    cpu_efficiency: float = 1.0
    gpu_efficiency: float = 1.0
    gpu_cuda_efficiency: Optional[float] = None
    gpu_launches: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise KernelError("flops and bytes_moved must be non-negative")
        if self.parallelism < 1:
            raise KernelError("parallelism must be >= 1")
        for name in ("parallel_fraction", "divergence", "irregularity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise KernelError(f"{name} must be in [0, 1], got {value}")
        for name in ("cpu_efficiency", "gpu_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.5:
                raise KernelError(
                    f"{name} must be in (0, 1.5], got {value}"
                )
        if self.gpu_cuda_efficiency is not None and not (
            0.0 < self.gpu_cuda_efficiency <= 1.5
        ):
            raise KernelError("gpu_cuda_efficiency must be in (0, 1.5]")
        if self.gpu_launches < 1:
            raise KernelError("gpu_launches must be >= 1")

    def scaled(self, factor: float) -> "WorkProfile":
        """A profile for ``factor`` times as much data (flops/bytes scale,
        structural properties do not)."""
        if factor <= 0:
            raise KernelError("scale factor must be positive")
        return replace(
            self,
            flops=self.flops * factor,
            bytes_moved=self.bytes_moved * factor,
            parallelism=max(1.0, self.parallelism * factor),
        )

    def combined(self, other: "WorkProfile") -> "WorkProfile":
        """Merge two profiles executed back-to-back (used for fused stages).

        Totals add; structural properties are flops-weighted averages.
        """
        total_flops = self.flops + other.flops
        if total_flops <= 0:
            weight = 0.5
        else:
            weight = self.flops / total_flops
        blend = lambda a, b: weight * a + (1.0 - weight) * b  # noqa: E731
        return WorkProfile(
            flops=total_flops,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            parallelism=blend(self.parallelism, other.parallelism),
            parallel_fraction=blend(
                self.parallel_fraction, other.parallel_fraction
            ),
            divergence=blend(self.divergence, other.divergence),
            irregularity=blend(self.irregularity, other.irregularity),
            cpu_efficiency=blend(self.cpu_efficiency, other.cpu_efficiency),
            gpu_efficiency=blend(self.gpu_efficiency, other.gpu_efficiency),
            gpu_cuda_efficiency=blend(
                self.effective_gpu_efficiency("cuda"),
                other.effective_gpu_efficiency("cuda"),
            ),
            gpu_launches=self.gpu_launches + other.gpu_launches,
        )

    def effective_gpu_efficiency(self, api: str) -> float:
        """The GPU implementation-efficiency for a given device API."""
        if api == "cuda" and self.gpu_cuda_efficiency is not None:
            return self.gpu_cuda_efficiency
        return self.gpu_efficiency

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of DRAM traffic (roofline x-axis)."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved

    def as_dict(self) -> Dict[str, float]:
        """Field dict (round-trips through the constructor)."""
        return {
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "parallelism": self.parallelism,
            "parallel_fraction": self.parallel_fraction,
            "divergence": self.divergence,
            "irregularity": self.irregularity,
            "cpu_efficiency": self.cpu_efficiency,
            "gpu_efficiency": self.gpu_efficiency,
            "gpu_cuda_efficiency": self.gpu_cuda_efficiency,
            "gpu_launches": self.gpu_launches,
        }
