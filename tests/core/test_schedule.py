"""Tests for Schedule: contiguity, chunks, predictions, enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Schedule, Stage
from repro.core.profiler import ProfilingTable
from repro.core.schedule import enumerate_schedules, validate_schedule
from repro.core.stage import Application
from repro.errors import ScheduleValidationError, SchedulingError
from repro.soc import WorkProfile


def make_app(n=4):
    stages = [
        Stage.model_only(f"s{i}", WorkProfile(flops=1e6, bytes_moved=1e5,
                                              parallelism=10.0))
        for i in range(n)
    ]
    return Application("app", stages)


def make_table(app, pus=("big", "gpu"), base=1.0):
    entries = {}
    for i, stage in enumerate(app.stage_names):
        for j, pu in enumerate(pus):
            entries[(stage, pu)] = base * (i + 1) * (j + 1)
    return ProfilingTable(
        application=app.name, platform="test", mode="interference",
        entries=entries, stage_names=app.stage_names, pu_classes=tuple(pus),
    )


class TestContiguity:
    def test_valid_schedules(self):
        Schedule.from_assignments(["big", "big", "gpu"])
        Schedule.from_assignments(["big"])
        Schedule.from_assignments(["gpu", "big", "little"])

    def test_violation_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule.from_assignments(["big", "gpu", "big"])

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule.from_assignments([])

    def test_homogeneous(self):
        schedule = Schedule.homogeneous(5, "gpu")
        assert schedule.assignments == ("gpu",) * 5
        assert schedule.pu_classes_used == ("gpu",)


class TestChunks:
    def test_chunk_decomposition(self):
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "little"]
        )
        chunks = schedule.chunks()
        assert [(c.start, c.stop, c.pu_class) for c in chunks] == [
            (0, 2, "big"), (2, 4, "gpu"), (4, 4, "little"),
        ] or [(c.start, c.stop, c.pu_class) for c in chunks] == [
            (0, 2, "big"), (2, 3, "gpu"), (3, 4, "little"),
        ]

    def test_single_chunk(self):
        chunks = Schedule.homogeneous(3, "big").chunks()
        assert len(chunks) == 1
        assert (chunks[0].start, chunks[0].stop) == (0, 3)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                    max_size=8))
    def test_property_chunks_tile_stages(self, raw):
        # Compress into a contiguity-respecting assignment first.
        seen, assignment = [], []
        for pu in raw:
            if pu in seen and (not assignment or assignment[-1] != pu):
                continue
            if pu not in seen:
                seen.append(pu)
            assignment.append(pu)
        schedule = Schedule.from_assignments(assignment)
        chunks = schedule.chunks()
        assert chunks[0].start == 0
        assert chunks[-1].stop == schedule.num_stages
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start
        assert len({c.pu_class for c in chunks}) == len(chunks)


class TestPredictions:
    def test_chunk_times(self):
        app = make_app(3)
        table = make_table(app)  # big: 1,2,3  gpu: 2,4,6
        schedule = Schedule.from_assignments(["big", "big", "gpu"])
        times = schedule.chunk_times(app, table)
        values = sorted(times.values())
        assert values == pytest.approx([3.0, 6.0])

    def test_predicted_latency_is_bottleneck(self):
        app = make_app(3)
        table = make_table(app)
        schedule = Schedule.from_assignments(["big", "big", "gpu"])
        assert schedule.predicted_latency(app, table) == pytest.approx(6.0)

    def test_gapness(self):
        app = make_app(3)
        table = make_table(app)
        schedule = Schedule.from_assignments(["big", "big", "gpu"])
        assert schedule.gapness(app, table) == pytest.approx(3.0)

    def test_homogeneous_gapness_zero(self):
        app = make_app(3)
        table = make_table(app)
        assert Schedule.homogeneous(3, "big").gapness(app, table) == 0.0

    def test_serial_latency(self):
        app = make_app(3)
        table = make_table(app)
        schedule = Schedule.from_assignments(["big", "big", "gpu"])
        assert schedule.predicted_serial_latency(app, table) == (
            pytest.approx(1 + 2 + 6)
        )

    def test_stage_count_mismatch(self):
        app = make_app(3)
        table = make_table(app)
        with pytest.raises(SchedulingError):
            Schedule.homogeneous(4, "big").predicted_latency(app, table)

    def test_describe(self):
        app = make_app(3)
        schedule = Schedule.from_assignments(["big", "big", "gpu"])
        text = schedule.describe(app)
        assert "s0..s1" in text and "@big" in text and "@gpu" in text


class TestEnumeration:
    def test_counts_single_pu(self):
        assert len(enumerate_schedules(3, ["big"])) == 1

    def test_counts_two_pus(self):
        # k=1 chunks: 2; k=2 chunks: (n-1 splits) * 2 orders.
        n = 5
        schedules = enumerate_schedules(n, ["big", "gpu"])
        assert len(schedules) == 2 + 2 * (n - 1)

    def test_counts_match_formula_three_pus(self):
        # sum over k of C(n-1, k-1) * P(m, k)
        from math import comb, perm
        n, m = 4, 3
        expected = sum(
            comb(n - 1, k - 1) * perm(m, k) for k in range(1, m + 1)
        )
        assert len(enumerate_schedules(n, ["a", "b", "c"])) == expected

    def test_paper_scale_space(self):
        """N=9, M=4: the contiguous space the solver actually explores."""
        schedules = enumerate_schedules(9, ["a", "b", "c", "d"])
        assert len(schedules) == 2116
        assert all(s.is_contiguous() for s in schedules)

    def test_all_unique(self):
        schedules = enumerate_schedules(5, ["a", "b", "c"])
        assert len({s.assignments for s in schedules}) == len(schedules)


class TestValidateSchedule:
    """Each constraint violation raises a distinctly-named error."""

    def check(self, **kwargs):
        with pytest.raises(ScheduleValidationError) as excinfo:
            validate_schedule(**kwargs)
        return excinfo.value

    def test_valid_schedule_passes(self):
        app = make_app(4)
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "gpu"]
        )
        assert validate_schedule(schedule, app) is schedule

    def test_raw_assignments_are_promoted(self):
        validated = validate_schedule(["big", "gpu"])
        assert isinstance(validated, Schedule)
        assert validated.assignments == ("big", "gpu")

    def test_c1_empty_schedule(self):
        error = self.check(schedule=[])
        assert error.constraint == "C1"
        assert "[C1]" in str(error)

    def test_c1_missing_pu_class(self):
        error = self.check(schedule=["big", "", "big"])
        assert error.constraint == "C1"
        error = self.check(schedule=["big", None, "big"])
        assert error.constraint == "C1"

    def test_c1_stage_count_mismatch(self):
        error = self.check(schedule=["big", "gpu"],
                           application=make_app(4))
        assert error.constraint == "C1"
        assert "4" in str(error)

    def test_c2_split_chunk(self):
        error = self.check(schedule=["big", "gpu", "big"])
        assert error.constraint == "C2"
        assert "'big'" in str(error)

    def test_availability_rejects_dead_pu(self):
        error = self.check(schedule=["big", "gpu"],
                           available_pus=["big", "little"])
        assert error.constraint == "availability"
        assert "gpu" in str(error)

    def test_c3a_chunk_exceeds_upper_bound(self):
        app = make_app(4)
        table = make_table(app)
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "gpu"]
        )
        times = schedule.chunk_times(app, table)
        bound = min(times.values()) + (
            max(times.values()) - min(times.values())
        ) / 2
        error = self.check(schedule=schedule, application=app,
                           table=table, max_chunk_time_s=bound)
        assert error.constraint == "C3a"
        assert "max" in str(error)

    def test_c3b_chunk_below_lower_bound(self):
        app = make_app(4)
        table = make_table(app)
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "gpu"]
        )
        times = schedule.chunk_times(app, table)
        bound = min(times.values()) + (
            max(times.values()) - min(times.values())
        ) / 2
        error = self.check(schedule=schedule, application=app,
                           table=table, min_chunk_time_s=bound)
        assert error.constraint == "C3b"
        assert "min" in str(error)

    def test_all_four_constraints_are_distinct(self):
        app = make_app(4)
        table = make_table(app)
        good = Schedule.from_assignments(["big", "big", "gpu", "gpu"])
        times = good.chunk_times(app, table)
        mid = min(times.values()) + (
            max(times.values()) - min(times.values())
        ) / 2
        cases = {
            "C1": dict(schedule=["big"], application=app),
            "C2": dict(schedule=["big", "gpu", "big", "gpu"]),
            "C3a": dict(schedule=good, application=app, table=table,
                        max_chunk_time_s=mid),
            "C3b": dict(schedule=good, application=app, table=table,
                        min_chunk_time_s=mid),
        }
        seen = {
            name: self.check(**kwargs).constraint
            for name, kwargs in cases.items()
        }
        assert seen == {name: name for name in cases}

    def test_c3_bounds_require_table(self):
        with pytest.raises(SchedulingError, match="profiling table"):
            validate_schedule(["big", "gpu"], application=make_app(2),
                              max_chunk_time_s=1.0)

    def test_within_bounds_passes(self):
        app = make_app(4)
        table = make_table(app)
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "gpu"]
        )
        times = schedule.chunk_times(app, table)
        validate_schedule(
            schedule, app, table,
            max_chunk_time_s=max(times.values()),
            min_chunk_time_s=min(times.values()),
        )
