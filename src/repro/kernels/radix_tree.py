"""Stage 4 of the Octree pipeline: Karras binary radix tree construction.

Implements the parallel radix-tree algorithm from Karras, *Maximizing
Parallelism in the Construction of BVHs, Octrees, and k-d Trees* (HPG
2012) - the paper's reference for its Octree workload (section 4.1).

Given ``n`` sorted, *distinct* Morton codes, the tree has exactly
``n - 1`` internal nodes.  Node ``i`` covers a contiguous key range whose
ends are found with three per-node binary searches over the
longest-common-prefix function ``delta``; all nodes are independent, which
is what makes the algorithm GPU-friendly despite its branchy inner loops.

Three implementations live here:

* :func:`build_radix_tree_reference` - a direct per-node transliteration of
  Karras' pseudocode.  Slow, obviously-correct; the test oracle.
* :func:`build_radix_tree_cpu` / :func:`build_radix_tree_gpu` - vectorized
  variants processing nodes in bulk (the gpu one in grid-stride chunks),
  with the binary searches run as masked lockstep iterations, mirroring
  how the SIMT hardware executes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import GPU_BLOCK, GPU_GRID
from repro.soc.workprofile import WorkProfile

#: Codes are stored in uint32; Morton codes use the low 30 bits.
CODE_BITS = 32
MORTON_BITS = 30


@dataclass
class RadixTree:
    """Output arrays of the build (``n - 1`` internal nodes).

    ``left``/``right`` hold child indices; the matching ``*_is_leaf`` flag
    says whether the index refers to a leaf (key index) or an internal
    node.  ``parent`` is -1 for the root (node 0).  ``delta_node`` is the
    length of the common prefix shared by every key under the node.
    ``range_left``/``range_right`` are the node's covered key range
    ``[min(i, j), max(i, j)]``.
    """

    left: np.ndarray
    right: np.ndarray
    left_is_leaf: np.ndarray
    right_is_leaf: np.ndarray
    parent: np.ndarray
    leaf_parent: np.ndarray
    delta_node: np.ndarray
    range_left: np.ndarray
    range_right: np.ndarray

    @property
    def num_internal(self) -> int:
        return len(self.left)

    @property
    def num_leaves(self) -> int:
        return len(self.leaf_parent)


def allocate_tree(n_leaves: int) -> RadixTree:
    """Pre-allocate output arrays for ``n_leaves`` keys (paper section 3.4
    pre-allocates all scratchpads to keep the pipeline allocation-free)."""
    if n_leaves < 1:
        raise KernelError("a radix tree needs at least one leaf")
    internal = max(n_leaves - 1, 0)
    return RadixTree(
        left=np.full(internal, -1, dtype=np.int64),
        right=np.full(internal, -1, dtype=np.int64),
        left_is_leaf=np.zeros(internal, dtype=bool),
        right_is_leaf=np.zeros(internal, dtype=bool),
        parent=np.full(internal, -1, dtype=np.int64),
        leaf_parent=np.full(n_leaves, -1, dtype=np.int64),
        delta_node=np.zeros(internal, dtype=np.int64),
        range_left=np.zeros(internal, dtype=np.int64),
        range_right=np.zeros(internal, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# delta: longest common prefix
# ----------------------------------------------------------------------
def _delta_scalar(codes: np.ndarray, i: int, j: int) -> int:
    """Reference delta(i, j): common-prefix length, -1 out of range."""
    n = len(codes)
    if j < 0 or j >= n:
        return -1
    xor = int(codes[i]) ^ int(codes[j])
    if xor == 0:
        # Distinct keys are a precondition (duplicate removal ran first);
        # fall back to index bits as Karras suggests, for robustness.
        return CODE_BITS + (CODE_BITS - (i ^ j).bit_length())
    return CODE_BITS - xor.bit_length()


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative integers."""
    x = x.astype(np.uint64)
    result = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = x >= (np.uint64(1) << np.uint64(shift))
        result[mask] += shift
        x = np.where(mask, x >> np.uint64(shift), x)
    return result + (x > 0)


def _delta_vec(codes: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Vectorized delta over index arrays (out-of-range j -> -1)."""
    n = len(codes)
    out = np.full(i.shape, -1, dtype=np.int64)
    valid = (j >= 0) & (j < n)
    iv = i[valid]
    jv = j[valid]
    xor = codes[iv].astype(np.uint64) ^ codes[jv].astype(np.uint64)
    prefix = CODE_BITS - _bit_length_u64(xor)
    ties = xor == 0
    if np.any(ties):
        idx_xor = (iv[ties] ^ jv[ties]).astype(np.uint64)
        prefix[ties] = CODE_BITS + (CODE_BITS - _bit_length_u64(idx_xor))
    out[valid] = prefix
    return out


# ----------------------------------------------------------------------
# Reference (oracle) implementation
# ----------------------------------------------------------------------
def build_radix_tree_reference(codes: np.ndarray) -> RadixTree:
    """Per-node transliteration of Karras Algorithm 1 (test oracle)."""
    n = len(codes)
    tree = allocate_tree(n)
    if n == 1:
        return tree

    def delta(i: int, j: int) -> int:
        return _delta_scalar(codes, i, j)

    for i in range(n - 1):
        d = 1 if delta(i, i + 1) > delta(i, i - 1) else -1
        delta_min = delta(i, i - d)
        l_max = 2
        while delta(i, i + l_max * d) > delta_min:
            l_max *= 2
        length = 0
        t = l_max // 2
        while t >= 1:
            if delta(i, i + (length + t) * d) > delta_min:
                length += t
            t //= 2
        j = i + length * d
        delta_node = delta(i, j)
        s = 0
        t = (length + 1) // 2
        while True:
            if delta(i, i + (s + t) * d) > delta_node:
                s += t
            if t == 1:
                break
            t = (t + 1) // 2
        gamma = i + s * d + min(d, 0)
        left_is_leaf = min(i, j) == gamma
        right_is_leaf = max(i, j) == gamma + 1
        tree.left[i] = gamma
        tree.right[i] = gamma + 1
        tree.left_is_leaf[i] = left_is_leaf
        tree.right_is_leaf[i] = right_is_leaf
        tree.delta_node[i] = delta_node
        tree.range_left[i] = min(i, j)
        tree.range_right[i] = max(i, j)
        if left_is_leaf:
            tree.leaf_parent[gamma] = i
        else:
            tree.parent[gamma] = i
        if right_is_leaf:
            tree.leaf_parent[gamma + 1] = i
        else:
            tree.parent[gamma + 1] = i
    return tree


# ----------------------------------------------------------------------
# Vectorized implementation (shared by the cpu and gpu variants)
# ----------------------------------------------------------------------
def _build_chunk(codes: np.ndarray, tree: RadixTree, start: int, stop: int) -> None:
    """Build internal nodes ``start..stop-1`` with lockstep binary searches."""
    n = len(codes)
    ii = np.arange(start, stop, dtype=np.int64)
    d = np.where(
        _delta_vec(codes, ii, ii + 1) > _delta_vec(codes, ii, ii - 1), 1, -1
    ).astype(np.int64)
    delta_min = _delta_vec(codes, ii, ii - d)

    # Exponential search for an upper bound on the range length.
    l_max = np.full(ii.shape, 2, dtype=np.int64)
    while True:
        grow = _delta_vec(codes, ii, ii + l_max * d) > delta_min
        if not np.any(grow):
            break
        l_max[grow] *= 2

    # Binary search for the exact other end.
    length = np.zeros(ii.shape, dtype=np.int64)
    t = l_max // 2
    while np.any(t >= 1):
        active = t >= 1
        probe = _delta_vec(codes, ii, ii + (length + t) * d) > delta_min
        take = active & probe
        length[take] += t[take]
        t = t // 2
    j = ii + length * d
    delta_node = _delta_vec(codes, ii, j)

    # Binary search for the split position.
    s = np.zeros(ii.shape, dtype=np.int64)
    t = (length + 1) // 2
    done = np.zeros(ii.shape, dtype=bool)
    while not np.all(done):
        active = ~done & (t >= 1)
        probe = _delta_vec(codes, ii, ii + (s + t) * d) > delta_node
        take = active & probe
        s[take] += t[take]
        done |= t <= 1
        t = np.where(done, 0, (t + 1) // 2)
    gamma = ii + s * d + np.minimum(d, 0)

    left_is_leaf = np.minimum(ii, j) == gamma
    right_is_leaf = np.maximum(ii, j) == gamma + 1
    tree.left[start:stop] = gamma
    tree.right[start:stop] = gamma + 1
    tree.left_is_leaf[start:stop] = left_is_leaf
    tree.right_is_leaf[start:stop] = right_is_leaf
    tree.delta_node[start:stop] = delta_node
    tree.range_left[start:stop] = np.minimum(ii, j)
    tree.range_right[start:stop] = np.maximum(ii, j)
    # Parent pointers (scattered writes - each child has one parent).
    tree.leaf_parent[gamma[left_is_leaf]] = ii[left_is_leaf]
    tree.parent[gamma[~left_is_leaf]] = ii[~left_is_leaf]
    tree.leaf_parent[gamma[right_is_leaf] + 1] = ii[right_is_leaf]
    tree.parent[gamma[~right_is_leaf] + 1] = ii[~right_is_leaf]
    del n


def build_radix_tree_cpu(codes: np.ndarray, tree: RadixTree) -> None:
    """Host variant: the whole node range as one vectorized chunk."""
    _validate_inputs(codes, tree)
    if len(codes) >= 2:
        _build_chunk(codes, tree, 0, len(codes) - 1)


def build_radix_tree_gpu(codes: np.ndarray, tree: RadixTree) -> None:
    """Device variant: grid-stride chunks of nodes (one per 'block')."""
    _validate_inputs(codes, tree)
    n_internal = len(codes) - 1
    stride = GPU_BLOCK * GPU_GRID
    for start in range(0, max(n_internal, 0), stride):
        _build_chunk(codes, tree, start, min(start + stride, n_internal))


def _validate_inputs(codes: np.ndarray, tree: RadixTree) -> None:
    if len(codes) < 1:
        raise KernelError("radix tree needs at least one code")
    if tree.num_internal != len(codes) - 1:
        raise KernelError(
            f"tree sized for {tree.num_internal + 1} leaves but got "
            f"{len(codes)} codes"
        )
    if len(codes) >= 2 and np.any(codes[1:] <= codes[:-1]):
        raise KernelError("codes must be sorted and distinct")


def radix_tree_work_profile(n: int) -> WorkProfile:
    """Work characterization of the Karras build.

    Three binary searches of ~log2(n) probes per node, each probe an XOR +
    CLZ + compare on scattered keys.  Branchy but *independent* per node
    with massive parallelism - the textbook GPU-friendly irregular kernel,
    which is why Fig. 1 shows the GPU fastest for this stage while the
    in-order little cores crawl.
    """
    logn = float(max(n, 2)).__int__().bit_length()
    return WorkProfile(
        flops=18.0 * logn * max(n, 1),
        bytes_moved=48.0 * max(n, 1),
        parallelism=float(max(n - 1, 1)),
        parallel_fraction=1.0,
        divergence=0.25,
        irregularity=0.35,
        cpu_efficiency=0.35,
        gpu_efficiency=0.55,
        gpu_cuda_efficiency=0.65,
        gpu_launches=1,
    )
