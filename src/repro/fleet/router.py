"""The fleet router: N SoC shards, one deterministic control loop.

Scale-out mirrors the single-SoC serving design one level up.  One
supervised fleet loop thread owns every mutable fleet structure - the
tenant registry, the backlog, the shard set - and drives all shards in
lockstep through :class:`~repro.serve.server.PipelineServer`'s step
mode.  Submissions cross threads through a lock-guarded inbox; after
the inbox, everything is single-threaded, so a fleet run is a pure
function of (platform set, tenant specs, chaos schedule, seed).

Per tick, in fixed phase order:

1. **chaos** - apply scheduled crashes, rejoins, gray windows, and
   degradations (:mod:`repro.fleet.chaos`);
2. **placement** - drain the inbox and place backlogged tenants on the
   shard whose cached interference tables predict least impact (the
   shard admission controller's ``predicted_impact``/latency, ties
   broken by load then shard index), honouring each shard's circuit
   breaker;
3. **step** - advance every live shard one tick (beating its heartbeat
   unless a gray window suppresses it);
4. **harvest** - absorb new shard timeline events into fleet state
   (window progress + latency samples, completions, shard-level
   evictions back into the backlog as migrations, failures);
5. **health** - classify every shard from heartbeat counts and window
   latency ratios, advance circuit breakers, and on shard death or
   sustained SLO breach hand the shard to the
   :class:`~repro.fleet.coordinator.FailoverCoordinator`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.analysis.lock_order import checked_lock
from repro.core.plan_cache import PlanCache
from repro.errors import FleetError, ReproError
from repro.obs.alerts import BurnRateEvaluator, BurnRateRule
from repro.obs.metrics import metrics
from repro.obs.recorder import recorder
from repro.obs.tracer import tracer
from repro.runtime.faults import (
    DEGRADE_END,
    DEGRADE_START,
    GRAY_END,
    GRAY_START,
    SOC_CRASH,
    SOC_REJOIN,
)
from repro.runtime.watchdog import (
    Heartbeat,
    Watchdog,
    WatchdogConfig,
    supervised_thread,
)
from repro.serve.admission import ADMIT
from repro.serve.server import DriftSpec, ServerConfig
from repro.serve.tenant import (
    COMPLETED,
    FAILED,
    PENDING,
    REJECTED,
    RUNNING,
    TenantSpec,
)
from repro.fleet.chaos import ChaosInjector, ChaosSchedule
from repro.fleet.coordinator import FailoverCoordinator
from repro.fleet.health import (
    CLOSED,
    DEAD,
    HALF_OPEN,
    HEALTHY,
    RECOVERING,
    SHARD_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)
from repro.fleet.metrics import (
    FleetReport,
    FleetTenantMetrics,
    surviving_p95,
    surviving_p95_slowdown,
)
from repro.fleet.shard import ShardSpec, SoCShard
from repro.fleet.tenant import FleetTenant
from repro.soc.platforms import get_platform


@dataclass
class FleetConfig:
    """Knobs for one fleet run."""

    max_ticks: int = 128
    max_impact_ratio: float = 2.5
    max_partition_classes: Optional[int] = 1
    #: Passed through to each shard's admission controller: price the
    #: impact ceiling against incumbents' total predicted slowdown
    #: instead of the newcomer's increment alone.
    cumulative_impact: bool = False
    reschedule: bool = True
    profiling_repetitions: int = 3
    candidates_k: int = 8
    stall_timeout_s: float = 60.0
    #: Ticks a tenant may wait in the fleet backlog before rejection.
    backlog_patience: int = 24
    #: Master switch: with failover off, dead shards strand their
    #: tenants (the baseline the soak's strict-improvement test beats).
    failover: bool = True
    health: HealthConfig = field(default_factory=HealthConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Per-window interference blame decomposition on every shard
    #: (:mod:`repro.obs.attribution`).  Off by default; the report only
    #: grows an ``attribution`` key when on, so default bytes are
    #: unchanged.
    attribution: bool = False
    #: Multi-window SLO burn-rate alerting per shard
    #: (:mod:`repro.obs.alerts`).  None disables it; a burning shard
    #: trips its breaker and fails over exactly like a sustained SLO
    #: breach.  A window burns error budget when its measured latency
    #: exceeds ``health.slo_factor`` times its isolated prediction.
    burn: Optional[BurnRateRule] = None

    def __post_init__(self) -> None:
        if self.max_ticks < 1:
            raise FleetError("max_ticks must be >= 1")
        if self.backlog_patience < 1:
            raise FleetError("backlog_patience must be >= 1")

    def server_config(self) -> ServerConfig:
        """The per-shard server configuration this fleet config implies.

        Shard queues are disabled: the *fleet* owns the backlog, and
        shards only ever see synchronous :meth:`try_admit` placements.
        """
        return ServerConfig(
            max_ticks=self.max_ticks,
            queue_capacity=0,
            max_impact_ratio=self.max_impact_ratio,
            max_partition_classes=self.max_partition_classes,
            cumulative_impact=self.cumulative_impact,
            reschedule=self.reschedule,
            profiling_repetitions=self.profiling_repetitions,
            candidates_k=self.candidates_k,
            stall_timeout_s=self.stall_timeout_s,
            attribution=self.attribution,
        )


class FleetRouter:
    """Serve streaming tenants across a fleet of virtual SoC shards."""

    def __init__(
        self,
        shard_specs: Sequence[ShardSpec],
        seed: int = 0,
        config: Optional[FleetConfig] = None,
        chaos: Optional[ChaosSchedule] = None,
    ):
        if not shard_specs:
            raise FleetError("a fleet needs at least one shard")
        names = [spec.name for spec in shard_specs]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate shard names in {names}")
        self.seed = seed
        self.config = config or FleetConfig()
        self.chaos = ChaosInjector(chaos or ChaosSchedule(), seed=seed)
        for spec in self.chaos.schedule.crashes:
            if spec.shard not in set(names):
                raise FleetError(
                    f"chaos schedule names unknown shard {spec.shard!r}"
                )

        # Shards with the same (platform_name, platform_seed) share one
        # platform object and one plan cache: profiling an application
        # once serves every identical device, exactly like a fleet of
        # phones sharing one offline-profiled model.
        server_config = self.config.server_config()
        platforms: Dict[Tuple[str, int], object] = {}
        caches: Dict[Tuple[str, int], PlanCache] = {}
        self.shards: List[SoCShard] = []
        for index, spec in enumerate(shard_specs):
            key = (spec.platform_name, spec.platform_seed)
            if key not in platforms:
                platforms[key] = get_platform(
                    spec.platform_name, seed=spec.platform_seed
                )
                caches[key] = PlanCache(
                    platforms[key],
                    repetitions=self.config.profiling_repetitions,
                    k=self.config.candidates_k,
                )
            self.shards.append(SoCShard(
                index, spec, platforms[key], caches[key],
                server_config, fleet_seed=seed,
            ))
        self.by_name = {shard.name: shard for shard in self.shards}
        self._caches = list(caches.values())

        self.monitor = HealthMonitor(self.config.health)
        self.breakers: Dict[str, CircuitBreaker] = {}
        for shard in self.shards:
            self.monitor.register(shard.name)
            self.breakers[shard.name] = CircuitBreaker(
                shard.name, self.config.breaker,
                seed=seed * 1_000 + shard.index,
            )
        self.coordinator = FailoverCoordinator(self)

        self.tenants: Dict[str, FleetTenant] = {}
        self.timeline: List[Dict[str, object]] = []
        self.ticks_executed = 0

        self._inbox: Deque[TenantSpec] = deque()
        self._inbox_lock = checked_lock("fleet.inbox-lock")
        self._backlog: List[str] = []
        self._arrival_counter = 0
        self._shard_windows: Dict[str, int] = {
            shard.name: 0 for shard in self.shards
        }

        #: Blame matrices harvested from the shards (attribution on).
        self.blame_matrices: List[object] = []
        self._burn = (BurnRateEvaluator(self.config.burn)
                      if self.config.burn is not None else None)
        #: Burn-rate alert records, in firing order (burn rule set).
        self.burn_alerts: List[object] = []
        #: Per-shard (good, bad) window outcomes of the current tick -
        #: the burn evaluator's per-tick feed, cleared every tick.
        self._tick_outcomes: Dict[str, List[int]] = {}

        self._heartbeat = Heartbeat(len(self.shards), "fleet-loop")
        self._watchdog = Watchdog(
            [self._heartbeat] + [s.heartbeat for s in self.shards],
            WatchdogConfig(stall_timeout_s=self.config.stall_timeout_s),
        )
        self._thread: Optional[threading.Thread] = None
        self._done = threading.Event()
        self._stop_requested = threading.Event()
        self._started = False
        self._stepping = False
        self._loop_error: Optional[str] = None
        #: Served-window measurements harvested from the shards, in
        #: harvest order - the open-loop traffic driver's feed.  Kept
        #: out of the fleet timeline so the serialized report does not
        #: balloon with one entry per window.
        self.window_log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, spec: TenantSpec) -> None:
        """Queue one job for fleet placement (same contract as
        :meth:`PipelineServer.submit`: pre-start submissions make the
        run deterministic)."""
        if self._done.is_set():
            raise FleetError(
                f"fleet has drained; cannot submit {spec.name!r}"
            )
        with self._inbox_lock:
            if spec.name in self.tenants or any(
                    pending.name == spec.name for pending in self._inbox):
                raise FleetError(
                    f"tenant name {spec.name!r} already submitted"
                )
            self._inbox.append(spec)

    def start(self) -> None:
        """Boot every shard and the supervised fleet loop."""
        if self._started:
            raise FleetError("fleet already started")
        self._started = True
        reg = metrics()
        if reg.enabled:
            for shard in self.shards:
                reg.gauge(f"fleet.shard_state.{shard.name}",
                          float(SHARD_STATE_CODES[HEALTHY]))
        for shard in self.shards:
            shard.boot()
        self._watchdog.start()
        self._thread = supervised_thread(
            "fleet-loop", self._loop, self._heartbeat, self._watchdog
        )
        self._thread.start()

    def drain(self, timeout_s: Optional[float] = None) -> FleetReport:
        """Wait until every tenant is terminal, stop supervision, and
        return the report."""
        if not self._started or self._thread is None:
            raise FleetError("fleet was never started")
        if not self._done.wait(timeout_s):
            self._stop_requested.set()
            raise FleetError(
                f"fleet did not drain within {timeout_s}s "
                f"(tick {self.ticks_executed})"
            )
        self._thread.join()
        self._watchdog.stop()
        if self._loop_error is not None:
            raise FleetError(f"fleet loop aborted: {self._loop_error}")
        return self.report()

    def stop(self) -> None:
        """Request an early stop and wait for the loop to exit."""
        self._stop_requested.set()
        if self._thread is not None:
            self._done.wait()
            self._thread.join()
            self._watchdog.stop()

    def run(self, timeout_s: Optional[float] = None) -> FleetReport:
        """Convenience: :meth:`start` + :meth:`drain`."""
        self.start()
        return self.drain(timeout_s)

    # ------------------------------------------------------------------
    # Step mode (mirrors PipelineServer.open_stepped/step/close_stepped)
    # ------------------------------------------------------------------
    def open_stepped(self) -> None:
        """Boot the shards for caller-driven ticking: no loop thread,
        no watchdog - the caller owns the clock and calls :meth:`step`.
        This is the open-loop traffic driver's entry point: submissions
        may keep arriving between ticks, whether or not the fleet is
        keeping up."""
        if self._started:
            raise FleetError("fleet already started")
        self._started = True
        self._stepping = True
        reg = metrics()
        if reg.enabled:
            for shard in self.shards:
                reg.gauge(f"fleet.shard_state.{shard.name}",
                          float(SHARD_STATE_CODES[HEALTHY]))
        for shard in self.shards:
            shard.boot()

    def step(self, tick: int) -> bool:
        """Execute one fleet tick; returns True when the fleet is
        drained (empty inbox, every tenant terminal)."""
        if not self._stepping:
            raise FleetError("fleet is not in step mode")
        self._tick(tick)
        self.ticks_executed += 1
        return self._drained()

    def close_stepped(self, detail: Optional[str] = None) -> FleetReport:
        """End a stepped run: settle non-terminal tenants, close the
        shards, and return the report."""
        if not self._stepping:
            raise FleetError("fleet is not in step mode")
        if detail is not None:
            self._loop_error = detail
        self._stepping = False
        self._close_out()
        self._done.set()
        return self.report()

    def report(self) -> FleetReport:
        """The (deterministic) fleet report for the run so far."""
        shards: Dict[str, Dict[str, object]] = {}
        for shard in self.shards:
            shards[shard.name] = {
                "state": self.monitor.state(shard.name),
                "breaker": self.breakers[shard.name].state,
                "generation": shard.generation,
                "windows_served": self._shard_windows[shard.name],
            }
        cache_stats: Dict[str, int] = {}
        for cache in self._caches:
            for key, value in cache.stats().items():
                cache_stats[key] = cache_stats.get(key, 0) + value
        attribution = None
        if self.config.attribution:
            from repro.obs.attribution import top_offenders

            attribution = {
                "windows": len(self.blame_matrices),
                "attributed_total": round(sum(
                    matrix.attributed for matrix in self.blame_matrices
                ), 9),
                "top_offenders": top_offenders(self.blame_matrices, 10),
            }
        alerts = None
        if self.config.burn is not None:
            alerts = [alert.to_dict() for alert in self.burn_alerts]
        return FleetReport(
            seed=self.seed,
            ticks=self.ticks_executed,
            n_shards=len(self.shards),
            failover_enabled=self.config.failover,
            tenants={
                name: FleetTenantMetrics.from_tenant(tenant)
                for name, tenant in self.tenants.items()
            },
            shards=shards,
            timeline=list(self.timeline),
            chaos_events=list(self.chaos.events),
            surviving_p95_s=surviving_p95(self.tenants),
            surviving_p95_slowdown=surviving_p95_slowdown(
                self.tenants),
            plan_cache=cache_stats,
            attribution=attribution,
            alerts=alerts,
        )

    # ------------------------------------------------------------------
    # Fleet loop (single thread; owns all fleet state)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        try:
            for tick in range(self.config.max_ticks):
                if self._stop_requested.is_set():
                    break
                self._heartbeat.start_task(tick)
                self._tick(tick)
                self._heartbeat.idle()
                self.ticks_executed = tick + 1
                if self._drained():
                    break
        except ReproError as error:
            self._loop_error = str(error)
        finally:
            self._close_out()
            self._done.set()

    def _tick(self, tick: int) -> None:
        with tracer().span("fleet.tick", "fleet", tick=tick):
            self._tick_outcomes = {
                shard.name: [0, 0] for shard in self.shards
            }
            self._apply_chaos(tick)
            self._heartbeat.check_cancelled()
            self._place_pending(tick)
            self._heartbeat.check_cancelled()
            self._step_shards(tick)
            self._harvest(tick)
            self._assess_health(tick)
            self._emit_series(tick)

    def _emit_series(self, tick: int) -> None:
        """Per-tick time series: shard states, backlog, blame totals."""
        reg = metrics()
        if not reg.enabled:
            return
        for shard in self.shards:
            reg.series_point(
                f"fleet.shard_state.{shard.name}", tick,
                float(SHARD_STATE_CODES[self.monitor.state(shard.name)]),
            )
        reg.series_point("fleet.backlog_depth", tick,
                         float(len(self._backlog)))
        if self.config.attribution:
            attributed = sum(
                matrix.attributed for matrix in self.blame_matrices
            )
            reg.series_point("blame.attributed_total", tick, attributed)

    def _drained(self) -> bool:
        with self._inbox_lock:
            pending = len(self._inbox)
        if pending:
            return False
        return all(tenant.done for tenant in self.tenants.values())

    def _close_out(self) -> None:
        """Terminal states for whatever the loop left behind."""
        with self._inbox_lock:
            leftovers = list(self._inbox)
            self._inbox.clear()
        for spec in leftovers:
            tenant = FleetTenant(
                spec=spec, arrival=self._arrival_counter,
                status=REJECTED,
                status_detail="fleet stopped before placement",
            )
            self._arrival_counter += 1
            self.tenants[spec.name] = tenant
        detail = (self._loop_error
                  or "tick budget exhausted before completion")
        for tenant in self.tenants.values():
            if tenant.done:
                continue
            if tenant.status == PENDING:
                tenant.status = REJECTED
                tenant.status_detail = (
                    "still in the fleet backlog when the fleet drained"
                )
            else:
                tenant.status = FAILED
                tenant.status_detail = detail
        for shard in self.shards:
            if shard.alive:
                shard.close()

    # ------------------------------------------------------------------
    # Event spine
    # ------------------------------------------------------------------
    #: fleet timeline event -> metric counter name.
    _FLEET_COUNTERS = {
        "place": "fleet.placements",
        "migrate": "fleet.migrations",
        "displace": "fleet.displacements",
        "failover": "fleet.failovers",
        "shed": "fleet.shed",
        "breaker": "breaker.transitions",
        "reject": "fleet.rejects",
        "burn_alert": "fleet.burn_alerts",
    }

    def _event(self, tick: int, event: str, **extra: object) -> None:
        entry: Dict[str, object] = {"tick": tick, "event": event}
        entry.update(extra)
        self.timeline.append(entry)
        # Mirror into the observability spine (all on the fleet loop
        # thread, so emission order is a function of the seed).
        track = (f"tenant:{entry['tenant']}" if "tenant" in entry
                 else f"shard:{entry.get('shard', 'fleet')}")
        trc = tracer()
        if trc.enabled:
            trc.instant(f"fleet.{event}", "fleet", track=track, **entry)
        rec = recorder()
        if rec.enabled:
            rec.record(f"fleet.{event}", **entry)
        reg = metrics()
        if reg.enabled:
            counter = self._FLEET_COUNTERS.get(event)
            if counter is not None:
                reg.counter(counter)
            if event == "shard_state":
                reg.gauge(
                    f"fleet.shard_state.{entry['shard']}",
                    float(SHARD_STATE_CODES[str(entry['to'])]),
                )

    # ------------------------------------------------------------------
    # Phase 1: chaos
    # ------------------------------------------------------------------
    def _apply_chaos(self, tick: int) -> None:
        for crash in self.chaos.crashes_at(tick):
            shard = self.by_name[crash.shard]
            if not shard.alive:
                continue
            shard.close(detail=f"SoC crashed at fleet tick {tick}")
            self.chaos.record(
                tick, SOC_CRASH, shard.name,
                detail=("rejoins at tick "
                        f"{crash.rejoin_tick}" if crash.rejoin_tick
                        is not None else "permanent"),
            )
        for rejoin in self.chaos.rejoins_at(tick):
            shard = self.by_name[rejoin.shard]
            if shard.alive:
                continue
            shard.boot()
            self.chaos.record(tick, SOC_REJOIN, shard.name,
                              detail=f"generation {shard.generation}")
            # A degradation window that spans the outage follows the
            # shard into its new generation.
            for degrade in self.chaos.schedule.degradations:
                if (degrade.shard == shard.name
                        and degrade.start_tick <= tick
                        and (degrade.end_tick is None
                             or tick < degrade.end_tick)):
                    shard.server.inject_drift(DriftSpec(
                        start_tick=tick, end_tick=degrade.end_tick,
                        busy=dict(degrade.busy),
                        demand_gbps=degrade.demand_gbps,
                    ))
        for gray in self.chaos.gray_edges_at(tick):
            kind = GRAY_START if gray.start_tick == tick else GRAY_END
            self.chaos.record(tick, kind, gray.shard,
                              detail=f"[{gray.start_tick}, "
                                     f"{gray.end_tick})")
        for shard in self.shards:
            shard.gray = (shard.alive
                          and self.chaos.gray_active(shard.name, tick))
        for degrade in self.chaos.degradations_at(tick):
            shard = self.by_name[degrade.shard]
            if shard.alive:
                shard.server.inject_drift(DriftSpec(
                    start_tick=tick, end_tick=degrade.end_tick,
                    busy=dict(degrade.busy),
                    demand_gbps=degrade.demand_gbps,
                ))
            self.chaos.record(
                tick, DEGRADE_START, degrade.shard,
                detail=f"busy {sorted(degrade.busy)} "
                       f"+{degrade.demand_gbps:g} GB/s",
            )
        for degrade in self.chaos.degrade_ends_at(tick):
            self.chaos.record(tick, DEGRADE_END, degrade.shard)

    # ------------------------------------------------------------------
    # Phase 2: placement
    # ------------------------------------------------------------------
    def tenants_on(self, shard_name: str) -> List[FleetTenant]:
        """Live tenants currently placed on a shard, by arrival."""
        out = [t for t in self.tenants.values()
               if t.shard == shard_name and t.status == RUNNING]
        out.sort(key=lambda t: t.arrival)
        return out

    def choose_shard(
        self, spec: TenantSpec
    ) -> Optional[Tuple[SoCShard, object]]:
        """The placement decision: admit where the cached interference
        tables predict least impact on incumbents, then least predicted
        latency, then least load; shard index breaks remaining ties."""
        best: Optional[Tuple[SoCShard, object]] = None
        best_key = None
        for shard in self.shards:
            if not shard.alive:
                continue
            if not self.breakers[shard.name].allows_placement():
                continue
            server = shard.server
            if server.knows_tenant(spec.name):
                # A shard remembers every tenant it ever hosted within
                # a generation; a migrating tenant moves elsewhere.
                continue
            decision = server.admission.evaluate(
                spec, server.placement, server.running_records(),
                queued=0,
            )
            if decision.action != ADMIT:
                continue
            worst_impact = max(decision.predicted_impact.values(),
                               default=1.0)
            key = (worst_impact, decision.predicted_latency_s,
                   len(server.running_records()), shard.index)
            if best_key is None or key < best_key:
                best, best_key = (shard, decision), key
        return best

    def commit_placement(self, tenant: FleetTenant, shard: SoCShard,
                         tick: int, kind: str,
                         detail: str = "") -> None:
        """Record a successful :meth:`try_admit` in fleet state."""
        tenant.place(shard.name)
        tenant.status_detail = detail or f"placed on {shard.name}"
        # The plan's isolated prediction for the schedule the shard
        # actually deployed: the contention-free reference latency the
        # SLO layer divides measured windows by.  Zero when the caller
        # committed without a preceding try_admit (unit tests do).
        isolated = 0.0
        record = shard.server.records.get(tenant.name)
        if (record is not None and record.plan is not None
                and record.schedule is not None):
            isolated = record.plan.isolated_prediction(record.schedule)
        self._event(tick, kind, tenant=tenant.name, shard=shard.name,
                    windows_remaining=tenant.windows_remaining,
                    isolated_s=round(isolated, 9),
                    **({"detail": detail} if detail else {}))

    def record_failover(self, shard: SoCShard, tick: int, cause: str,
                        displaced: int) -> None:
        self._event(tick, "failover", shard=shard.name, cause=cause,
                    displaced=displaced)

    def record_shed(self, tenant: FleetTenant, tick: int,
                    cause: str) -> None:
        self._event(tick, "shed", tenant=tenant.name,
                    priority=tenant.priority, cause=cause)

    def _place_pending(self, tick: int) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    break
                spec = self._inbox.popleft()
            tenant = FleetTenant(spec=spec,
                                 arrival=self._arrival_counter,
                                 backlog_since=tick)
            self._arrival_counter += 1
            self.tenants[spec.name] = tenant
            self._backlog.append(spec.name)
        for name in list(self._backlog):
            tenant = self.tenants[name]
            if tenant.status != PENDING:
                # A same-tick harvest settled the tenant after it was
                # displaced (a shard can evict a tenant and still
                # finish its already-simulated window in one tick);
                # the backlog entry is stale.
                self._backlog.remove(name)
                continue
            if tenant.windows_remaining < 1:
                tenant.status = COMPLETED
                tenant.status_detail = (
                    "every window was served before re-placement"
                )
                self._backlog.remove(name)
                self._event(tick, "complete", tenant=name,
                            shard=tenant.shard_history[-1])
                continue
            choice = self.choose_shard(tenant.pending_spec())
            if choice is not None:
                shard, _ = choice
                decision = shard.server.try_admit(
                    tenant.pending_spec(), tick
                )
                assert decision.action == ADMIT, decision
                kind = "migrate" if tenant.shard_history else "place"
                self.commit_placement(tenant, shard, tick, kind)
                self._backlog.remove(name)
            elif (tenant.backlog_since is not None
                  and tick - tenant.backlog_since
                  >= self.config.backlog_patience):
                tenant.status = REJECTED
                tenant.status_detail = (
                    f"no shard could place the tenant within "
                    f"{self.config.backlog_patience} ticks of backlog"
                )
                self._event(tick, "reject", tenant=name,
                            reason=tenant.status_detail)
                self._backlog.remove(name)

    # ------------------------------------------------------------------
    # Phase 3+4: step and harvest
    # ------------------------------------------------------------------
    def _step_shards(self, tick: int) -> None:
        for shard in self.shards:
            if shard.alive:
                shard.step(tick)

    def _harvest(self, tick: int) -> None:
        for shard in self.shards:
            for event in shard.new_events():
                self._absorb(shard, tick, event)

    def _absorb(self, shard: SoCShard, tick: int,
                event: Dict[str, object]) -> None:
        kind = str(event["event"])
        name = str(event["tenant"])
        tenant = self.tenants.get(name)
        if tenant is None:
            raise FleetError(
                f"shard {shard.name!r} reported unknown tenant {name!r}"
            )
        if kind == "window":
            latency = float(event["latency_s"])  # type: ignore[arg-type]
            tenant.windows_served += 1
            tenant.samples.extend(
                [latency] * tenant.spec.window_tasks
            )
            self._shard_windows[shard.name] += 1
            self.monitor.note_window(shard.name, name, latency)
            # The contention-free reference for *this* window: the
            # isolated prediction of the schedule currently deployed
            # (placement events go stale once the shard's online
            # rescheduler switches schedules mid-residency).
            isolated = 0.0
            record = shard.server.records.get(name)
            if (record is not None and record.plan is not None
                    and record.schedule is not None):
                isolated = record.plan.isolated_prediction(
                    record.schedule)
            self.window_log.append({
                "tick": tick, "tenant": name, "shard": shard.name,
                "latency_s": latency, "isolated_s": isolated,
            })
            if (self.config.attribution and record is not None
                    and record.history
                    and record.history[-1].blame is not None):
                self.blame_matrices.append(record.history[-1].blame)
            if self._burn is not None:
                # A window burns error budget when it runs more than
                # slo_factor over its contention-free prediction.
                bad = (isolated > 0.0
                       and latency > self.config.health.slo_factor
                       * isolated)
                self._tick_outcomes.setdefault(
                    shard.name, [0, 0])[1 if bad else 0] += 1
        elif kind == "complete":
            tenant.status = COMPLETED
            tenant.shard = None
            tenant.status_detail = (
                f"completed on {shard.name}: served "
                f"{tenant.windows_served}/{tenant.spec.windows} windows"
                f" across {len(tenant.shard_history)} shard(s)"
            )
            self.monitor.forget_tenant(shard.name, name)
            self._event(tick, "complete", tenant=name, shard=shard.name)
        elif kind == "reschedule":
            tenant.reschedules += 1
        elif kind == "evict":
            # Shard-level contention eviction: the fleet turns a local
            # eviction into a migration opportunity instead of a loss.
            if tenant.status == RUNNING and tenant.shard == shard.name:
                tenant.status = PENDING
                tenant.shard = None
                tenant.backlog_since = tick
                tenant.status_detail = (
                    f"displaced from {shard.name} by contention eviction"
                )
                self.monitor.forget_tenant(shard.name, name)
                self._backlog.append(name)
                self._event(tick, "displace", tenant=name,
                            shard=shard.name,
                            reason=str(event.get("beneficiary", "")))
        elif kind == "fail":
            tenant.status = FAILED
            tenant.shard = None
            tenant.status_detail = str(event.get("reason", ""))
            self.monitor.forget_tenant(shard.name, name)
            self._event(tick, "fail", tenant=name, shard=shard.name,
                        reason=tenant.status_detail)
        # "admit"/"withdraw"/"queue"/"reject"/"hold": fleet state was
        # already updated by the actor that caused them.

    # ------------------------------------------------------------------
    # Phase 5: health, breakers, failover
    # ------------------------------------------------------------------
    def _assess_health(self, tick: int) -> None:
        for shard in self.shards:
            breaker = self.breakers[shard.name]
            transition = self.monitor.assess(
                shard.name, beats=shard.heartbeat.beats,
                crashed=not shard.alive,
            )
            if transition is not None:
                self._event(tick, "shard_state", shard=shard.name,
                            frm=transition[0], to=transition[1])
            health = self.monitor.health(shard.name)

            newly_dead = (transition is not None
                          and transition[1] == DEAD)
            if newly_dead:
                trip = breaker.trip(tick)
                if trip is not None:
                    self._event(tick, "breaker", shard=shard.name,
                                frm=trip[0], to=trip[1])
                cause = (f"shard {shard.name} dead at tick {tick} "
                         + ("(crashed)" if not shard.alive
                            else "(heartbeat lost)"))
                if self.config.failover:
                    self.coordinator.failover(shard, tick, cause)
                elif not shard.alive:
                    self._strand_tenants(shard, tick, cause)

            slo = self.monitor.slo_breached(shard.name)
            if slo and breaker.state == CLOSED and not newly_dead:
                trip = breaker.trip(tick)
                if trip is not None:
                    self._event(tick, "breaker", shard=shard.name,
                                frm=trip[0], to=trip[1])
                if self.config.failover:
                    cause = (f"sustained SLO breach on {shard.name} "
                             f"at tick {tick}")
                    self.coordinator.failover(shard, tick, cause)
                    self.monitor.reset_slo(shard.name)

            if self._burn is not None:
                good, bad = self._tick_outcomes.get(shard.name, (0, 0))
                alert = self._burn.observe(shard.name, tick,
                                           int(good), int(bad))
                if alert is not None:
                    self.burn_alerts.append(alert)
                    self._event(tick, "burn_alert", shard=shard.name,
                                fast_burn=round(alert.fast_burn, 9),
                                slow_burn=round(alert.slow_burn, 9))
                    # A burning shard fails over exactly like a
                    # sustained SLO breach: trip the breaker, hand the
                    # shard to the coordinator, clear the burn window.
                    if breaker.state == CLOSED and not newly_dead:
                        trip = breaker.trip(tick)
                        if trip is not None:
                            self._event(tick, "breaker",
                                        shard=shard.name,
                                        frm=trip[0], to=trip[1])
                        if self.config.failover:
                            cause = (f"burn-rate alert on {shard.name} "
                                     f"at tick {tick}")
                            self.coordinator.failover(shard, tick, cause)
                            self._burn.reset(shard.name)

            beating = shard.alive and health.beat_seen
            advance = breaker.advance(tick, beating)
            if advance is not None:
                self._event(tick, "breaker", shard=shard.name,
                            frm=advance[0], to=advance[1])
                if (advance == (HALF_OPEN, CLOSED)
                        and self.monitor.state(shard.name)
                        == RECOVERING):
                    self.monitor.set_state(shard.name, HEALTHY)
                    self._event(tick, "shard_state", shard=shard.name,
                                frm=RECOVERING, to=HEALTHY)

    def _strand_tenants(self, shard: SoCShard, tick: int,
                        cause: str) -> None:
        """Failover disabled: a dead shard's tenants are lost."""
        for tenant in self.tenants_on(shard.name):
            tenant.status = FAILED
            tenant.shard = None
            tenant.status_detail = f"{cause}; failover disabled"
            self._event(tick, "fail", tenant=tenant.name,
                        shard=shard.name, reason=tenant.status_detail)
