"""SLO evaluation over an open-loop run: the TrafficReport.

Aggregates the driver's window samples into per-tier attainment and
slowdown percentiles, the per-tick goodput trajectory, and burst
recovery times.  Pure arithmetic over recorded samples - no wall
clock, no RNG - so a report is byte-identical across repeated seeded
runs (the property the ``traffic-soak`` CI job byte-diffs).

*Goodput* counts the window-tasks served within their tier's SLO:
a fleet that admits everything and breaches every SLO has high
throughput and near-zero goodput, which is exactly the distinction
the overload scenario's admission gate measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.serve.metrics import attainment, percentile
from repro.traffic.driver import TrafficRunResult, WindowSample
from repro.traffic.spec import TrafficSpec


@dataclass(frozen=True)
class TierSummary:
    """SLO outcome of one tier's served windows."""

    tier: str
    slo_slowdown: float
    arrivals: int
    offered_windows: int
    served_windows: int
    goodput_windows: int
    goodput_tasks: int
    attainment: float
    p50_slowdown: float
    p95_slowdown: float
    p99_slowdown: float

    def to_dict(self) -> Dict[str, object]:
        # Same "n/a" convention as the serve/fleet layers: a tier with
        # no served windows has no slowdown distribution.
        def _ratio(value: float) -> object:
            if self.served_windows == 0:
                return "n/a"
            return round(value, 9)

        return {
            "tier": self.tier,
            "slo_slowdown": self.slo_slowdown,
            "arrivals": self.arrivals,
            "offered_windows": self.offered_windows,
            "served_windows": self.served_windows,
            "goodput_windows": self.goodput_windows,
            "goodput_tasks": self.goodput_tasks,
            "attainment": _ratio(self.attainment),
            "p50_slowdown": _ratio(self.p50_slowdown),
            "p95_slowdown": _ratio(self.p95_slowdown),
            "p99_slowdown": _ratio(self.p99_slowdown),
        }


@dataclass(frozen=True)
class BurstRecovery:
    """Time to drain a burst's backlog back to its pre-burst level."""

    start_tick: int
    end_tick: int
    pre_burst_backlog: int
    peak_backlog: int
    #: First tick at/after the burst end where the fleet backlog is
    #: back at (or under) the pre-burst level; None = never recovered
    #: within the horizon.
    recovered_tick: Optional[int]

    @property
    def recovery_ticks(self) -> Optional[int]:
        if self.recovered_tick is None:
            return None
        return self.recovered_tick - self.end_tick

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "pre_burst_backlog": self.pre_burst_backlog,
            "peak_backlog": self.peak_backlog,
            "recovered_tick": (self.recovered_tick
                               if self.recovered_tick is not None
                               else "n/a"),
            "recovery_ticks": (self.recovery_ticks
                               if self.recovery_ticks is not None
                               else "n/a"),
        }


@dataclass(frozen=True)
class TrafficReport:
    """The serialized outcome of one open-loop traffic run."""

    seed: int
    ticks: int
    n_shards: int
    spec: Mapping[str, object]
    arrivals: int
    offered_windows: int
    served_windows: int
    goodput_windows: int
    goodput_tasks: int
    admitted: int
    rejected: int
    completed: int
    tiers: Mapping[str, TierSummary]
    recoveries: Sequence[BurstRecovery]
    per_tick: Sequence[Mapping[str, object]]
    #: Blame-decomposition summary lifted from the fleet report
    #: (``FleetConfig.attribution``); None - and absent from the
    #: serialized form - when attribution was off for the run.
    attribution: Optional[Mapping[str, object]] = None
    #: Burn-rate alerts, fleet (per-shard) and traffic (per-tier)
    #: merged; None when no burn rule was armed anywhere.
    alerts: Optional[Sequence[Mapping[str, object]]] = None

    def to_dict(self) -> Dict[str, object]:
        """Stable dict for :func:`repro.serialization.write_json_report`
        (sorted tier order, rounded ratios - byte-identical across
        repeated seeded runs)."""
        out: Dict[str, object] = {
            "seed": self.seed,
            "ticks": self.ticks,
            "n_shards": self.n_shards,
            "spec": dict(self.spec),
            "arrivals": self.arrivals,
            "offered_windows": self.offered_windows,
            "served_windows": self.served_windows,
            "goodput_windows": self.goodput_windows,
            "goodput_tasks": self.goodput_tasks,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "tiers": {
                name: self.tiers[name].to_dict()
                for name in sorted(self.tiers)
            },
            "recoveries": [r.to_dict() for r in self.recoveries],
            "per_tick": [dict(entry) for entry in self.per_tick],
        }
        if self.attribution is not None:
            out["attribution"] = dict(self.attribution)
        if self.alerts is not None:
            out["alerts"] = [dict(alert) for alert in self.alerts]
        return out


def _tier_summary(tier_name: str, slo: float,
                  arrivals: int, offered_windows: int,
                  samples: List[WindowSample],
                  window_tasks: int) -> TierSummary:
    slowdowns = [s.slowdown for s in samples]
    good = sum(1 for s in slowdowns if 0.0 < s <= slo)
    if slowdowns:
        met = attainment(slowdowns, slo)
        p50 = percentile(slowdowns, 50.0)
        p95 = percentile(slowdowns, 95.0)
        p99 = percentile(slowdowns, 99.0)
    else:
        met = p50 = p95 = p99 = 0.0
    return TierSummary(
        tier=tier_name,
        slo_slowdown=slo,
        arrivals=arrivals,
        offered_windows=offered_windows,
        served_windows=len(samples),
        goodput_windows=good,
        goodput_tasks=good * window_tasks,
        attainment=met,
        p50_slowdown=p50,
        p95_slowdown=p95,
        p99_slowdown=p99,
    )


def _recoveries(spec: TrafficSpec,
                per_tick: Sequence[Mapping[str, object]],
                ) -> List[BurstRecovery]:
    backlog = [int(entry["backlog"]) for entry in per_tick]
    out: List[BurstRecovery] = []
    for burst in spec.bursts:
        if burst.start_tick >= len(backlog):
            continue
        pre = (backlog[burst.start_tick - 1]
               if burst.start_tick > 0 else 0)
        end = min(burst.end_tick, len(backlog))
        peak = max(backlog[burst.start_tick:end], default=pre)
        recovered: Optional[int] = None
        for tick in range(end, len(backlog)):
            if backlog[tick] <= pre:
                recovered = tick
                break
        out.append(BurstRecovery(
            start_tick=burst.start_tick,
            end_tick=burst.end_tick,
            pre_burst_backlog=pre,
            peak_backlog=peak,
            recovered_tick=recovered,
        ))
    return out


def evaluate(spec: TrafficSpec, seed: int,
             result: TrafficRunResult) -> TrafficReport:
    """Aggregate one driver run into its TrafficReport."""
    report = result.fleet_report
    by_tier: Dict[str, List[WindowSample]] = {
        tier.name: [] for tier in spec.tiers
    }
    for sample in result.samples:
        by_tier[sample.tier].append(sample)

    tiers: Dict[str, TierSummary] = {}
    for tier in spec.tiers:
        tier_arrivals = [a for a in result.arrivals.values()
                         if a.tier == tier.name]
        tiers[tier.name] = _tier_summary(
            tier.name, tier.slo_slowdown,
            arrivals=len(tier_arrivals),
            offered_windows=sum(a.windows for a in tier_arrivals),
            samples=by_tier[tier.name],
            window_tasks=tier.window_tasks,
        )

    statuses = [m.status for m in report.tenants.values()]
    # Merge burn alerts from both clocks' evaluators - the fleet's
    # per-shard alerts and the driver's per-tier alerts - into one
    # tick-ordered stream; None only when neither rule was armed.
    alerts: Optional[List[Dict[str, object]]] = None
    if report.alerts is not None or result.burn_alerts is not None:
        merged: List[Dict[str, object]] = [
            dict(alert) for alert in (report.alerts or ())
        ]
        merged.extend(a.to_dict() for a in (result.burn_alerts or ()))
        merged.sort(key=lambda a: (int(a["tick"]), str(a["key"])))  # type: ignore[arg-type]
        alerts = merged
    return TrafficReport(
        seed=seed,
        ticks=result.ticks,
        n_shards=report.n_shards,
        spec=spec.to_dict(),
        arrivals=len(result.arrivals),
        offered_windows=sum(a.windows
                            for a in result.arrivals.values()),
        served_windows=sum(t.served_windows for t in tiers.values()),
        goodput_windows=sum(t.goodput_windows
                            for t in tiers.values()),
        goodput_tasks=sum(t.goodput_tasks for t in tiers.values()),
        admitted=sum(1 for m in report.tenants.values()
                     if m.windows_served > 0),
        rejected=statuses.count("rejected"),
        completed=statuses.count("completed"),
        tiers=tiers,
        recoveries=_recoveries(spec, result.per_tick),
        per_tick=list(result.per_tick),
        attribution=report.attribution,
        alerts=alerts,
    )
