"""Level 3 of BT-Optimizer: on-device autotuning (paper section 3.3).

The model's top candidates are close enough that small prediction errors
reorder them (the "performance tier" effect), so the final level runs the
top candidates on the actual device - here: the discrete-event pipeline
back-end on the virtual SoC - measures their steady-state throughput for
a fixed interval, and selects the measured best.  Table 4 is exactly this
process's log for AlexNet-sparse on the Pixel, where the measured-best
candidate beat the predicted-best by 1.35x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.schedule import validate_schedule
from repro.core.stage import Application
from repro.errors import SchedulingError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.runtime.simulator import (
    SimWindow,
    SimulatedPipelineExecutor,
    simulate_batch,
)
from repro.soc.platform import Platform

#: Tasks streamed per candidate evaluation (stand-in for the paper's
#: fixed 10-second throughput interval; 30 matches its reported runs).
DEFAULT_EVAL_TASKS = 30


@dataclass(frozen=True)
class AutotuneEntry:
    """One candidate's predicted and measured latency."""

    rank: int
    candidate: ScheduleCandidate
    measured_latency_s: float

    @property
    def predicted_latency_s(self) -> float:
        return self.candidate.predicted_latency_s

    def speedup_over(self, reference: "AutotuneEntry") -> float:
        """Measured speedup of this entry relative to ``reference``
        (Table 4's bottom row, referenced to schedule #1)."""
        return reference.measured_latency_s / self.measured_latency_s


@dataclass
class AutotuneResult:
    """The autotuning campaign's full log."""

    entries: List[AutotuneEntry]

    @property
    def predicted_best(self) -> AutotuneEntry:
        """The entry the model ranked first (lowest predicted latency)."""
        return min(self.entries, key=lambda e: e.candidate.rank)

    @property
    def measured_best(self) -> AutotuneEntry:
        """The entry that actually ran fastest - the deployed schedule."""
        return min(self.entries, key=lambda e: e.measured_latency_s)

    @property
    def autotuning_gain(self) -> float:
        """Measured speedup of the measured-best over the predicted-best
        (the extra ~1.35x the paper reports users gain from level 3)."""
        return (
            self.predicted_best.measured_latency_s
            / self.measured_best.measured_latency_s
        )


class Autotuner:
    """Evaluate optimizer candidates on the (virtual) device.

    Args:
        application: The pipeline being tuned.
        platform: Target virtual SoC.
        eval_tasks: Tasks streamed per candidate measurement.
        depth: Multi-buffering depth forwarded to the executor.
    """

    def __init__(
        self,
        application: Application,
        platform: Platform,
        eval_tasks: int = DEFAULT_EVAL_TASKS,
        depth: Optional[int] = None,
    ):
        if eval_tasks < 2:
            raise SchedulingError("eval_tasks must be >= 2")
        self.application = application
        self.platform = platform
        self.eval_tasks = eval_tasks
        self.depth = depth

    def measure(self, candidate: ScheduleCandidate) -> AutotuneEntry:
        """Run one candidate and record its measured per-task latency.

        The candidate is validated against the application and the
        platform's schedulable PU classes before anything executes, so
        a hand-crafted or stale (e.g. migrated) schedule fails loudly
        here rather than deep inside the executor.
        """
        validate_schedule(
            candidate.schedule, self.application,
            available_pus=self.platform.schedulable_classes(),
        )
        with tracer().span("autotuner.measure", "autotuner",
                           rank=candidate.rank,
                           predicted_s=candidate.predicted_latency_s):
            executor = SimulatedPipelineExecutor(
                self.application,
                candidate.schedule.chunks(),
                self.platform,
                depth=self.depth,
            )
            measured = executor.measure_per_task_latency(self.eval_tasks)
        reg = metrics()
        if reg.enabled:
            reg.counter("autotuner.measurements")
            reg.observe("autotuner.measured_s", measured)
        return AutotuneEntry(
            rank=candidate.rank, candidate=candidate,
            measured_latency_s=measured,
        )

    def measure_batch(
        self, candidates: Sequence[ScheduleCandidate],
    ) -> List[AutotuneEntry]:
        """Measure a whole round of candidates in one batched call.

        Validation and executor construction happen up front; the
        simulations then run through :func:`simulate_batch`, the DES's
        batch entry point.  Measured latencies are identical to looping
        :meth:`measure` (same executors, same measurement RNG keys) -
        the batch only removes per-candidate call overhead.
        """
        executors = []
        for candidate in candidates:
            validate_schedule(
                candidate.schedule, self.application,
                available_pus=self.platform.schedulable_classes(),
            )
            executors.append(SimulatedPipelineExecutor(
                self.application,
                candidate.schedule.chunks(),
                self.platform,
                depth=self.depth,
            ))
        with tracer().span("autotuner.round", "autotuner",
                           candidates=len(executors)):
            results = simulate_batch([
                SimWindow(executor, self.eval_tasks)
                for executor in executors
            ])
        entries: List[AutotuneEntry] = []
        reg = metrics()
        for candidate, executor, result in zip(candidates, executors,
                                               results):
            measured = executor.measured_latency(result)
            with tracer().span("autotuner.measure", "autotuner",
                               rank=candidate.rank,
                               predicted_s=candidate.predicted_latency_s,
                               measured_s=measured):
                pass
            if reg.enabled:
                reg.counter("autotuner.measurements")
                reg.observe("autotuner.measured_s", measured)
            entries.append(AutotuneEntry(
                rank=candidate.rank, candidate=candidate,
                measured_latency_s=measured,
            ))
        return entries

    def tune(
        self,
        optimization: "OptimizationResult | Sequence[ScheduleCandidate]",
        top: Optional[int] = None,
    ) -> AutotuneResult:
        """Measure the top candidates and return the campaign log.

        Args:
            optimization: An :class:`OptimizationResult` or a plain
                candidate list (already sorted by predicted latency).
            top: How many leading candidates to execute (default: all).
        """
        candidates = (
            optimization.candidates
            if isinstance(optimization, OptimizationResult)
            else list(optimization)
        )
        if not candidates:
            raise SchedulingError("no candidates to autotune")
        subset = candidates[:top] if top is not None else candidates
        return AutotuneResult(entries=self.measure_batch(subset))
