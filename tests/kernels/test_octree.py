"""Tests for edge counting and octree construction (Karras section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (
    allocate_octree,
    allocate_tree,
    build_octree_cpu,
    build_octree_gpu,
    build_radix_tree_cpu,
    count_edges_cpu,
    count_edges_gpu,
    exclusive_scan_cpu,
)


def make_pipeline_inputs(codes):
    """Run stages 4-6 (tree, counts, offsets) for given sorted codes."""
    n = len(codes)
    tree = allocate_tree(n)
    build_radix_tree_cpu(codes, tree)
    counts = np.zeros(max(n - 1, 1), dtype=np.int64)[: n - 1]
    count_edges_cpu(tree, counts)
    offsets = np.zeros_like(counts)
    exclusive_scan_cpu(counts, offsets)
    return tree, counts, offsets


def build_full(codes):
    tree, counts, offsets = make_pipeline_inputs(codes)
    total = int(offsets[-1] + counts[-1]) if len(counts) else 1
    octree = allocate_octree(max(total, 1))
    build_octree_cpu(tree, codes, counts, offsets, octree)
    return tree, counts, offsets, octree


def make_codes(n, seed=0):
    rng = np.random.default_rng(seed)
    codes = rng.choice(1 << 30, size=n, replace=False).astype(np.uint32)
    return np.sort(codes)


distinct_sorted_codes = (
    st.sets(st.integers(min_value=0, max_value=(1 << 30) - 1),
            min_size=2, max_size=48)
    .map(lambda s: np.asarray(sorted(s), dtype=np.uint32))
)


class TestEdgeCounts:
    def test_cpu_gpu_agree(self):
        codes = make_codes(200, seed=1)
        tree, counts, _ = make_pipeline_inputs(codes)
        gpu_counts = np.zeros_like(counts)
        count_edges_gpu(tree, gpu_counts)
        np.testing.assert_array_equal(counts, gpu_counts)

    def test_counts_non_negative(self):
        codes = make_codes(300, seed=2)
        _, counts, _ = make_pipeline_inputs(codes)
        assert np.all(counts >= 0)

    def test_root_owns_at_least_one_cell(self):
        codes = make_codes(50, seed=3)
        _, counts, _ = make_pipeline_inputs(codes)
        assert counts[0] >= 1

    def test_two_distant_codes(self):
        codes = np.array([0, (1 << 30) - 1], dtype=np.uint32)
        _, counts, _ = make_pipeline_inputs(codes)
        # Root prefix is empty -> exactly the octree root cell.
        assert counts[0] == 1

    def test_size_mismatch_rejected(self):
        codes = make_codes(10, seed=4)
        tree, _, _ = make_pipeline_inputs(codes)
        with pytest.raises(KernelError):
            count_edges_cpu(tree, np.zeros(3, dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(distinct_sorted_codes)
    def test_property_total_cells_bounded(self, codes):
        """Total octree cells cannot exceed 10 levels per leaf path."""
        _, counts, _ = make_pipeline_inputs(codes)
        assert counts.sum() <= 11 * len(codes)


class TestOctreeBuild:
    def test_cpu_gpu_agree(self):
        codes = make_codes(150, seed=5)
        tree, counts, offsets = make_pipeline_inputs(codes)
        total = int(offsets[-1] + counts[-1])
        a = allocate_octree(total)
        b = allocate_octree(total)
        build_octree_cpu(tree, codes, counts, offsets, a)
        build_octree_gpu(tree, codes, counts, offsets, b)
        np.testing.assert_array_equal(a.level, b.level)
        np.testing.assert_array_equal(a.code, b.code)
        np.testing.assert_array_equal(a.parent, b.parent)
        np.testing.assert_array_equal(a.children, b.children)
        assert a.num_cells == b.num_cells

    def test_single_root_cell(self):
        _, _, _, octree = build_full(make_codes(40, seed=6))
        roots = [
            cell for cell in range(octree.num_cells)
            if octree.parent[cell] < 0
        ]
        assert roots == [0] or octree.level[roots[0]] == 0
        assert len(roots) == 1

    def test_parent_is_exactly_one_level_up(self):
        _, _, _, octree = build_full(make_codes(80, seed=7))
        for cell in range(octree.num_cells):
            parent = octree.parent[cell]
            if parent >= 0:
                assert octree.level[cell] == octree.level[parent] + 1

    def test_child_links_are_consistent(self):
        _, _, _, octree = build_full(make_codes(60, seed=8))
        for cell in range(octree.num_cells):
            parent = octree.parent[cell]
            if parent >= 0:
                assert cell in octree.children[parent]
        for cell in range(octree.num_cells):
            for child in octree.children[cell]:
                if child >= 0:
                    assert octree.parent[child] == cell

    def test_child_code_extends_parent_prefix(self):
        _, _, _, octree = build_full(make_codes(70, seed=9))
        for cell in range(octree.num_cells):
            parent = octree.parent[cell]
            if parent < 0:
                continue
            plevel = int(octree.level[parent])
            shift = 3 * (10 - plevel)
            assert (int(octree.code[cell]) >> shift) == (
                int(octree.code[parent]) >> shift
            )

    def test_degenerate_single_point(self):
        codes = np.array([123], dtype=np.uint32)
        tree = allocate_tree(1)
        build_radix_tree_cpu(codes, tree)
        octree = allocate_octree(1)
        build_octree_cpu(
            tree, codes, np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), octree,
        )
        assert octree.num_cells == 1
        assert octree.level[0] == 0

    def test_over_capacity_rejected(self):
        codes = make_codes(30, seed=10)
        tree, counts, offsets = make_pipeline_inputs(codes)
        octree = allocate_octree(1)
        if int(offsets[-1] + counts[-1]) > 1:
            with pytest.raises(KernelError):
                build_octree_cpu(tree, codes, counts, offsets, octree)

    @settings(max_examples=25, deadline=None)
    @given(distinct_sorted_codes)
    def test_property_every_cell_reachable_from_root(self, codes):
        _, _, _, octree = build_full(codes)
        for cell in range(octree.num_cells):
            node, hops = cell, 0
            while octree.parent[node] >= 0:
                node = octree.parent[node]
                hops += 1
                assert hops <= octree.num_cells
            assert octree.level[node] == 0

    @settings(max_examples=25, deadline=None)
    @given(distinct_sorted_codes)
    def test_property_levels_within_morton_depth(self, codes):
        _, _, _, octree = build_full(codes)
        levels = octree.level[: octree.num_cells]
        assert np.all(levels >= 0)
        assert np.all(levels <= 10)

    def test_allocate_rejects_zero(self):
        with pytest.raises(KernelError):
            allocate_octree(0)
