"""Tests for BT-Profiler and the ProfilingTable."""

import pytest

from repro.apps import build_octree_application
from repro.core.profiler import (
    INTERFERENCE,
    ISOLATED,
    BTProfiler,
    ProfilingTable,
    interference_ratios,
)
from repro.errors import ProfilingError
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def octree_app():
    return build_octree_application(n_points=20_000)


@pytest.fixture(scope="module")
def tables(pixel, octree_app):
    profiler = BTProfiler(pixel, repetitions=5)
    return profiler.profile_both(octree_app)


class TestProfiler:
    def test_table_covers_all_stages_and_pus(self, tables, octree_app,
                                             pixel):
        isolated, interference = tables
        for table in tables:
            assert table.stage_names == octree_app.stage_names
            assert set(table.pu_classes) == set(pixel.pu_classes())
            for stage in table.stage_names:
                for pu in table.pu_classes:
                    assert table.latency(stage, pu) > 0

    def test_modes_recorded(self, tables):
        isolated, interference = tables
        assert isolated.mode == ISOLATED
        assert interference.mode == INTERFERENCE

    def test_profiling_is_deterministic(self, pixel, octree_app):
        profiler = BTProfiler(pixel, repetitions=3)
        a = profiler.profile(octree_app, mode=ISOLATED)
        b = profiler.profile(octree_app, mode=ISOLATED)
        for stage in a.stage_names:
            for pu in a.pu_classes:
                assert a.latency(stage, pu) == b.latency(stage, pu)

    def test_more_repetitions_converge_to_truth(self, pixel, octree_app):
        stage = octree_app.stages[0]
        truth = pixel.true_time(stage.work, BIG)
        few = BTProfiler(pixel, repetitions=2).profile(
            octree_app, mode=ISOLATED
        ).latency(stage.name, BIG)
        many = BTProfiler(pixel, repetitions=200).profile(
            octree_app, mode=ISOLATED
        ).latency(stage.name, BIG)
        assert abs(many - truth) <= abs(few - truth) + 0.002 * truth

    def test_unknown_mode_rejected(self, pixel, octree_app):
        with pytest.raises(ProfilingError):
            BTProfiler(pixel).profile(octree_app, mode="standalone")

    def test_zero_repetitions_rejected(self, pixel):
        with pytest.raises(ProfilingError):
            BTProfiler(pixel, repetitions=0)

    def test_interference_differs_from_isolated(self, tables):
        isolated, interference = tables
        diffs = [
            abs(interference.latency(s, p) - isolated.latency(s, p))
            / isolated.latency(s, p)
            for s in isolated.stage_names
            for p in isolated.pu_classes
        ]
        assert max(diffs) > 0.05

    def test_pixel_cpu_slower_under_interference(self, tables):
        isolated, interference = tables
        ratios = interference_ratios(isolated, interference)
        assert ratios[BIG] > 1.0
        assert ratios[MEDIUM] > 1.0
        assert ratios[LITTLE] > 1.0

    def test_pixel_gpu_boosts_under_interference(self, tables):
        isolated, interference = tables
        ratios = interference_ratios(isolated, interference)
        assert ratios[GPU] < 1.0


class TestProfilingTable:
    def test_row_and_column(self, tables):
        isolated, _ = tables
        row = isolated.row("sort")
        assert set(row) == set(isolated.pu_classes)
        column = isolated.column(BIG)
        assert set(column) == set(isolated.stage_names)

    def test_best_pu(self, tables):
        isolated, _ = tables
        assert isolated.best_pu("sort") != GPU
        assert isolated.best_pu("radix-tree") == GPU

    def test_missing_entry(self, tables):
        isolated, _ = tables
        with pytest.raises(ProfilingError):
            isolated.latency("sort", "npu")

    def test_restricted_drops_columns(self, tables):
        isolated, _ = tables
        sub = isolated.restricted([BIG, GPU])
        assert set(sub.pu_classes) == {BIG, GPU}
        assert sub.latency("sort", BIG) == isolated.latency("sort", BIG)
        with pytest.raises(ProfilingError):
            sub.latency("sort", LITTLE)

    def test_restricted_to_nothing_rejected(self, tables):
        isolated, _ = tables
        with pytest.raises(ProfilingError):
            isolated.restricted(["npu"])

    def test_to_rows_renders_all(self, tables):
        isolated, _ = tables
        rows = isolated.to_rows()
        assert len(rows) == len(isolated.stage_names) + 1
        assert rows[0][0] == "stage"


class TestInterferenceRatios:
    def test_mismatched_tables_rejected(self, tables, pixel):
        isolated, _ = tables
        other = ProfilingTable(
            application="x", platform=pixel.name, mode=INTERFERENCE,
            entries={("s", BIG): 1.0}, stage_names=("s",),
            pu_classes=(BIG,),
        )
        with pytest.raises(ProfilingError):
            interference_ratios(isolated, other)


class TestMeasurementStatistics:
    def test_stddev_collected(self, pixel, octree_app):
        table = BTProfiler(pixel, repetitions=10).profile(octree_app)
        for stage in table.stage_names:
            for pu in table.pu_classes:
                assert table.stddev(stage, pu) > 0.0

    def test_noise_fraction_matches_timer_sigma(self, pixel, octree_app):
        table = BTProfiler(pixel, repetitions=100).profile(
            octree_app, mode=ISOLATED
        )
        fraction = table.noise_fraction("sort", BIG)
        # Pixel's timer noise sigma is 3%; the sample estimate should be
        # in that ballpark.
        assert 0.01 < fraction < 0.06

    def test_single_repetition_has_zero_std(self, pixel, octree_app):
        table = BTProfiler(pixel, repetitions=1).profile(
            octree_app, mode=ISOLATED
        )
        assert table.stddev("sort", BIG) == 0.0

    def test_restricted_keeps_stats(self, pixel, octree_app):
        table = BTProfiler(pixel, repetitions=5).profile(octree_app)
        sub = table.restricted([BIG])
        assert sub.stddev("sort", BIG) == table.stddev("sort", BIG)

    def test_serialization_round_trips_stats(self, pixel, octree_app,
                                             tmp_path):
        from repro.serialization import load, save

        table = BTProfiler(pixel, repetitions=5).profile(octree_app)
        path = tmp_path / "t.json"
        save(table, path)
        restored = load(path)
        assert restored.stddev("sort", BIG) == pytest.approx(
            table.stddev("sort", BIG)
        )

    def test_legacy_artifact_without_stats_loads(self, pixel, octree_app):
        from repro.serialization import (
            profiling_table_from_dict,
            profiling_table_to_dict,
        )

        table = BTProfiler(pixel, repetitions=5).profile(octree_app)
        data = profiling_table_to_dict(table)
        del data["stddevs_s"]
        restored = profiling_table_from_dict(data)
        assert restored.stddev("sort", BIG) == 0.0
