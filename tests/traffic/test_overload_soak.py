"""The overload acceptance bar, verbatim from the issue:

* at >= 1.5x saturation the seeded soak produces byte-identical
  ``TrafficReport``s across repeated runs;
* with admission control the fleet degrades gracefully: goodput
  plateaus instead of collapsing and the top tier's p99 slowdown stays
  bounded (under its SLO);
* admission control strictly beats admit-everything on goodput;
* replaying a recorded trace reproduces the recorded run
  byte-identically.
"""

import pytest

from repro.serialization import write_json_report
from repro.traffic import (
    FleetOverloadScenario,
    OVERLOAD_TIERS,
    TrafficTrace,
    overload_curve,
    run_overload_soak,
)

SCENARIO = FleetOverloadScenario()


@pytest.fixture(scope="module")
def soak_on():
    return run_overload_soak(SCENARIO, admission=True)


@pytest.fixture(scope="module")
def soak_off():
    return run_overload_soak(SCENARIO, admission=False)


class TestOverloadShape:
    def test_scenario_is_overloaded(self, soak_on):
        _, report = soak_on
        assert SCENARIO.load_multiplier >= 1.5
        assert report.offered_windows > report.served_windows
        assert report.rejected > 0

    def test_admit_everything_serves_more_but_worse(
        self, soak_on, soak_off
    ):
        _, on = soak_on
        _, off = soak_off
        assert off.served_windows > on.served_windows
        for tier in OVERLOAD_TIERS:
            assert (on.tiers[tier.name].attainment
                    > off.tiers[tier.name].attainment)


class TestAdmissionGate:
    def test_admission_strictly_beats_admit_everything_on_goodput(
        self, soak_on, soak_off
    ):
        _, on = soak_on
        _, off = soak_off
        assert on.goodput_tasks > off.goodput_tasks
        assert on.goodput_windows > off.goodput_windows

    def test_top_tier_p99_bounded_by_its_slo(self, soak_on):
        _, report = soak_on
        gold = report.tiers["gold"]
        assert gold.served_windows > 0
        assert gold.p99_slowdown <= gold.slo_slowdown
        assert gold.attainment == 1.0

    def test_goodput_plateaus_past_saturation(self):
        points = overload_curve(
            SCENARIO, multipliers=(0.5, 1.0, 1.5, 2.0),
        )
        goodput = [p["goodput_tasks"] for p in points]
        # Rising toward saturation...
        assert goodput[0] < goodput[1] < goodput[2]
        # ...then flat-ish: excess load is rejected, not served badly.
        assert goodput[3] >= 0.85 * goodput[2]

    def test_burst_recovers_within_horizon(self, soak_on):
        _, report = soak_on
        assert len(report.recoveries) == 1
        recovery = report.recoveries[0]
        assert recovery.peak_backlog > recovery.pre_burst_backlog
        assert recovery.recovered_tick is not None
        assert recovery.recovery_ticks <= SCENARIO.backlog_patience


class TestByteDeterminism:
    def test_two_soaks_write_identical_report_bytes(
        self, soak_on, tmp_path
    ):
        _, first_report = soak_on
        _, second_report = run_overload_soak(SCENARIO, admission=True)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        write_json_report(first, first_report.to_dict())
        write_json_report(second, second_report.to_dict())
        assert first.read_bytes() == second.read_bytes()

    def test_replay_reproduces_recorded_run(self, soak_on, tmp_path):
        _, live_report = soak_on
        trace = TrafficTrace.record(SCENARIO.spec(), SCENARIO.seed)
        path = tmp_path / "trace.json"
        trace.save(path)
        _, replayed_report = run_overload_soak(
            SCENARIO, admission=True, trace=TrafficTrace.load(path),
        )
        live = tmp_path / "live.json"
        replay = tmp_path / "replay.json"
        write_json_report(live, live_report.to_dict())
        write_json_report(replay, replayed_report.to_dict())
        assert live.read_bytes() == replay.read_bytes()

    def test_different_seed_differs(self, soak_on):
        _, report = soak_on
        _, other = run_overload_soak(
            FleetOverloadScenario(seed=8), admission=True,
        )
        assert other.to_dict()["per_tick"] != report.to_dict()["per_tick"]
