"""The frozen-workload trace: record once, replay byte-identically.

A :class:`TrafficTrace` captures a generator run as data - the spec it
was generated from, the seed, and the concrete arrival stream - inside
a schema-versioned, checksummed artifact
(:func:`repro.serialization.write_artifact`, kind ``traffic_trace``).
Replaying a trace through the open-loop driver reproduces the recorded
run exactly, so a regression found under generated load can be
debugged against an immutable workload file instead of a spec + seed
pair that a generator change could silently reinterpret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import TrafficError
from repro.serialization import (
    PathLike,
    SerializationError,
    read_artifact,
    write_artifact,
)
from repro.traffic.generator import ArrivalEvent, TrafficGenerator
from repro.traffic.spec import TrafficSpec

#: Artifact tag for serialized traces.
TRACE_KIND = "traffic_trace"


@dataclass(frozen=True)
class TrafficTrace:
    """One recorded arrival stream, with its provenance."""

    spec: TrafficSpec
    seed: int
    events: Tuple[ArrivalEvent, ...]

    def __post_init__(self) -> None:
        last_tick = -1
        for event in self.events:
            if event.tick < last_tick:
                raise TrafficError(
                    "trace events must be in non-decreasing tick "
                    f"order ({event.name!r} at tick {event.tick} "
                    f"follows tick {last_tick})"
                )
            if event.tick >= self.spec.ticks:
                raise TrafficError(
                    f"trace event {event.name!r} at tick "
                    f"{event.tick} is outside the spec horizon "
                    f"[0, {self.spec.ticks})"
                )
            last_tick = event.tick

    @classmethod
    def record(cls, spec: TrafficSpec, seed: int = 0) -> "TrafficTrace":
        """Run the generator over the spec horizon and freeze the
        resulting stream."""
        generator = TrafficGenerator(spec, seed=seed)
        return cls(spec=spec, seed=seed,
                   events=tuple(generator.events()))

    # ------------------------------------------------------------------
    # Replay surface (the same shape the driver reads generators with)
    # ------------------------------------------------------------------
    def events_at(self, tick: int) -> List[ArrivalEvent]:
        return [event for event in self.events if event.tick == tick]

    def offered_windows(self) -> int:
        return sum(event.windows for event in self.events)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def save(self, path: PathLike) -> None:
        """Persist as a tagged, checksummed artifact (atomic write)."""
        write_artifact(path, TRACE_KIND, self.to_payload())

    @classmethod
    def load(cls, path: PathLike) -> "TrafficTrace":
        """Load and validate a trace artifact (checksum + tag + schema)."""
        data = read_artifact(path, TRACE_KIND)
        try:
            return cls(
                spec=TrafficSpec.from_dict(data["spec"]),
                seed=int(data["seed"]),
                events=tuple(
                    ArrivalEvent.from_dict(entry)
                    for entry in data["events"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"{path}: malformed traffic trace: {exc}"
            ) from exc
