"""Benchmark + shape check for Fig. 7 (impact of interference)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import PAPER_RATIOS, format_fig7, run_fig7


def test_fig7_interference_ratios(benchmark, paper_scale):
    result = run_once(benchmark, run_fig7, paper_scale)
    print("\n" + format_fig7(result))

    # Every slowdown/speedup direction matches the paper's Fig. 7.
    assert result.directions_matching() == len(PAPER_RATIOS)

    ratios = result.ratios
    # Pixel: all CPU tiers slow, Mali GPU speeds up.
    assert ratios[("pixel7a", "big")] > 1.1
    assert ratios[("pixel7a", "gpu")] < 1.0
    # OnePlus: the A510 little cores and Adreno GPU boost under load -
    # the paper's most surprising observation.
    assert ratios[("oneplus11", "little")] < 0.95
    assert ratios[("oneplus11", "gpu")] < 0.95
    assert 0.9 < ratios[("oneplus11", "medium")] < 1.15
    # Jetson: CUDA GPU slows; much harder in the 7 W power envelope.
    assert ratios[("jetson_orin_nano", "gpu")] > 1.0
    assert (
        ratios[("jetson_orin_nano_lp", "gpu")]
        > ratios[("jetson_orin_nano", "gpu")] + 0.1
    )
