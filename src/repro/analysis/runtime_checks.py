"""Dynamic concurrency-invariant checker (opt-in, ``REPRO_CHECK=1``).

The threaded BT-Implementer back-end is correct only under discipline
that Python cannot express in types: every :class:`SpscQueue` has
exactly one producer and one consumer thread, recycled TaskObjects and
UsmBuffers are never touched after retirement, and no two buffers of
one task alias the same storage.  This module is the recording side of
the checker: instrumented runtime objects call in when they observe a
violation, and the violations accumulate in a thread-safe log that
tests, ``python -m repro race`` and CI turn into structured reports.

The checker is **opt-in**: with ``REPRO_CHECK`` unset (or ``"0"``)
every hook is a cheap flag test and nothing is recorded.  Lock-order
tracking additionally binds at *object construction* time (see
:func:`repro.analysis.lock_order.checked_lock`), so the environment
variable must be set before the runtime objects are created - true for
a fresh process (pytest, the CLI) and for tests that use
:func:`collecting`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

#: Environment variable that opts a process into the checker.
CHECK_ENV = "REPRO_CHECK"

# Violation kinds.
SPSC_PRODUCER = "spsc-multi-producer"
SPSC_CONSUMER = "spsc-multi-consumer"
USE_AFTER_RELEASE = "use-after-release"
BUFFER_ALIAS = "buffer-alias"
LOCK_ORDER = "lock-order-cycle"

#: Module-level flag the runtime hot paths read directly; mutated only
#: through :func:`enable_checks` / :func:`disable_checks`.
ENABLED = os.environ.get(CHECK_ENV, "0") not in ("", "0")


def checks_enabled() -> bool:
    """Whether the dynamic checker is currently recording."""
    return ENABLED


def enable_checks() -> None:
    """Turn the checker on for this process (tests, the race runner)."""
    global ENABLED
    ENABLED = True


def disable_checks() -> None:
    """Turn the checker off (recording stops; instrumentation stays)."""
    global ENABLED
    ENABLED = False


@dataclass(frozen=True)
class Violation:
    """One observed breach of a runtime concurrency invariant.

    Attributes:
        kind: One of the module's kind constants.
        where: The object involved (queue name, buffer name, lock name).
        detail: Human-readable description of what was observed.
        thread: Name of the thread that tripped the check.
    """

    kind: str
    where: str
    detail: str
    thread: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the violation."""
        return {
            "kind": self.kind, "where": self.where,
            "detail": self.detail, "thread": self.thread,
        }


@dataclass
class ViolationLog:
    """Thread-safe, append-only log of observed violations."""

    _violations: List[Violation] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, violation: Violation) -> None:
        with self._lock:
            self._violations.append(violation)

    def __len__(self) -> int:
        with self._lock:
            return len(self._violations)

    def snapshot(self) -> Tuple[Violation, ...]:
        with self._lock:
            return tuple(self._violations)

    def since(self, index: int) -> Tuple[Violation, ...]:
        """Violations recorded after the first ``index`` entries."""
        with self._lock:
            return tuple(self._violations[index:])

    def clear(self) -> None:
        with self._lock:
            self._violations.clear()

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.snapshot():
            out[violation.kind] = out.get(violation.kind, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the full log."""
        snapshot = self.snapshot()
        return {
            "violations": [v.to_dict() for v in snapshot],
            "counts": self.counts,
            "total": len(snapshot),
        }


#: Process-wide log; swapped out temporarily by :func:`collecting`.
_GLOBAL_LOG = ViolationLog()
_active_log = _GLOBAL_LOG


def global_log() -> ViolationLog:
    """The process-wide violation log (what CI gates on)."""
    return _GLOBAL_LOG


def active_log() -> ViolationLog:
    """Where :func:`record_violation` currently appends."""
    return _active_log


def record_violation(kind: str, where: str, detail: str) -> None:
    """Record one violation into the active log (no-op when disabled)."""
    if not ENABLED:
        return
    _active_log.record(Violation(
        kind=kind, where=where, detail=detail,
        thread=threading.current_thread().name,
    ))


@contextmanager
def collecting(enable: bool = True) -> Iterator[ViolationLog]:
    """Collect violations into a fresh local log, restoring on exit.

    Tests that *deliberately* violate an invariant use this so the
    seeded violations never pollute the process-wide log that the
    instrumented CI run gates on.  ``enable`` (default) also forces the
    checker on for the duration.
    """
    global _active_log, ENABLED
    local = ViolationLog()
    previous_log, previous_enabled = _active_log, ENABLED
    _active_log = local
    if enable:
        ENABLED = True
    try:
        yield local
    finally:
        _active_log = previous_log
        ENABLED = previous_enabled
