"""BT-Implementer, functional back-end: real dispatcher threads.

Executes a pipeline schedule with actual Python threads and actual compute
kernels, following the dispatcher protocol of paper section 3.4:

1. pop a TaskObject pointer from the previous queue,
2. synchronize the chunk's buffers for the target PU (coherence hints),
3. dispatch each stage's compute kernel in sequence,
4. yield until the kernels complete (implicit - kernels are synchronous
   here, like OpenMP's implicit barrier),
5. push the pointer to the next queue.

TaskObjects are multi-buffered and recycled through the first queue once
the last chunk finishes with them.  This back-end validates *functional*
correctness of arbitrary schedules (any stage-to-PU mapping must produce
identical outputs); performance numbers come from the discrete-event
back-end in :mod:`repro.runtime.simulator`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.stage import Application, Chunk
from repro.errors import PipelineError, QueueClosedError
from repro.runtime.spsc import SpscQueue
from repro.runtime.task_object import TaskObject

#: Sentinel flowing through the queues to shut dispatchers down.
_POISON = object()

#: Safety timeout so a wedged pipeline fails tests instead of hanging.
_QUEUE_TIMEOUT_S = 30.0


@dataclass
class ThreadedRunResult:
    """Outcome of a threaded pipeline run."""

    n_tasks: int
    wall_seconds: float
    chunk_stage_counts: Dict[int, int] = field(default_factory=dict)
    validated: bool = False


class _Dispatcher(threading.Thread):
    """One long-lived dispatcher thread per pipeline chunk."""

    def __init__(self, chunk_index: int, chunk: Chunk,
                 application: Application, in_queue: SpscQueue,
                 out_queue: SpscQueue, affinity_cores: Sequence[int]):
        super().__init__(name=f"dispatch-{chunk_index}-{chunk.pu_class}",
                         daemon=True)
        self.chunk_index = chunk_index
        self.chunk = chunk
        self.application = application
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.affinity_cores = tuple(affinity_cores)
        self.stages_executed = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        # The real implementation calls sched_setaffinity() here; the
        # virtual SoC has no OS scheduler, so the pinning is recorded on
        # the thread for tests to inspect.
        try:
            while True:
                task = self.in_queue.pop(timeout=_QUEUE_TIMEOUT_S)
                if task is _POISON:
                    self.out_queue.push(_POISON, timeout=_QUEUE_TIMEOUT_S)
                    return
                self._process(task)
                self.out_queue.push(task, timeout=_QUEUE_TIMEOUT_S)
        except QueueClosedError:
            # A neighbour unwound; propagate the closure along the chain
            # so every dispatcher (and the driver) wakes up.
            self.in_queue.close()
            self.out_queue.close()
        except BaseException as exc:  # surfaced by the executor
            self.error = exc
            # Unwind the pipeline so neighbours don't block on us.
            self.in_queue.close()
            self.out_queue.close()

    def _process(self, task: TaskObject) -> None:
        task.synchronize_for(self.chunk.pu_class)
        for index in self.chunk.stage_indices:
            stage = self.application.stages[index]
            stage.kernel_for_pu(self.chunk.pu_class)(task)
            self.stages_executed += 1


class ThreadedPipelineExecutor:
    """Run an application's schedule with real threads and kernels.

    Args:
        application: Must provide ``make_task`` (functional inputs).
        chunks: The schedule's chunk decomposition (contiguous cover of
            all stages, in order).
        num_task_objects: Multi-buffering depth; defaults to
            ``len(chunks) + 1`` so every chunk can be busy while one task
            is in flight between the ends.
        affinity: Optional mapping pu_class -> core ids, recorded on the
            dispatcher threads.
    """

    def __init__(
        self,
        application: Application,
        chunks: Sequence[Chunk],
        num_task_objects: Optional[int] = None,
        affinity: Optional[Dict[str, Sequence[int]]] = None,
    ):
        _check_chunk_cover(application, chunks)
        if application.make_task is None:
            raise PipelineError(
                f"{application.name!r} has no task factory; the threaded "
                "back-end needs real inputs"
            )
        self.application = application
        self.chunks = list(chunks)
        self.depth = (
            num_task_objects if num_task_objects is not None
            else len(self.chunks) + 1
        )
        if self.depth < 1:
            raise PipelineError("need at least one TaskObject")
        self.affinity = affinity or {}

    def run(
        self,
        n_tasks: int,
        on_complete: Optional[Callable[[TaskObject, int], None]] = None,
        validate: bool = False,
    ) -> ThreadedRunResult:
        """Stream ``n_tasks`` inputs through the pipeline.

        Args:
            n_tasks: Number of tasks to process.
            on_complete: Called with (task_object, task_index) after the
                final chunk finishes each task, before recycling.
            validate: Run the application's ``validate_task`` on every
                completed task.
        """
        if n_tasks < 1:
            raise PipelineError("n_tasks must be >= 1")
        queues = [
            SpscQueue(capacity=self.depth + 1)
            for _ in range(len(self.chunks) + 1)
        ]
        dispatchers = [
            _Dispatcher(
                chunk_index=i,
                chunk=chunk,
                application=self.application,
                in_queue=queues[i],
                out_queue=queues[i + 1],
                affinity_cores=self.affinity.get(chunk.pu_class, ()),
            )
            for i, chunk in enumerate(self.chunks)
        ]
        start = time.perf_counter()
        for dispatcher in dispatchers:
            dispatcher.start()

        issued = 0
        completed = 0
        try:
            # Prime the pipeline with the multi-buffered TaskObjects.
            for slot in range(min(self.depth, n_tasks)):
                queues[0].push(self._load_task(TaskObject(slot), issued),
                               timeout=_QUEUE_TIMEOUT_S)
                issued += 1
            # Drain + recycle until all tasks complete.
            while completed < n_tasks:
                try:
                    task = queues[-1].pop(timeout=_QUEUE_TIMEOUT_S)
                except QueueClosedError:
                    break  # a dispatcher crashed and unwound the queues
                if task is _POISON:  # pragma: no cover - defensive
                    raise PipelineError("pipeline shut down early")
                self._finish_task(task, completed, on_complete, validate)
                completed += 1
                if issued < n_tasks:
                    task.recycle(issued)
                    try:
                        queues[0].push(self._load_task(task, issued),
                                       timeout=_QUEUE_TIMEOUT_S)
                    except QueueClosedError:
                        break  # pipeline unwound mid-recycle
                    issued += 1
            if completed == n_tasks:
                try:
                    queues[0].push(_POISON, timeout=_QUEUE_TIMEOUT_S)
                except QueueClosedError:  # pragma: no cover - late crash
                    pass
        finally:
            # Close every queue *before* joining: a dispatcher blocked on
            # an upstream pop must wake even when the failure happened
            # downstream of it.  Closed queues still drain queued items
            # (including the poison pill), so the clean-shutdown path is
            # unaffected.
            for queue in queues:
                queue.close()
        for dispatcher in dispatchers:
            dispatcher.join(timeout=_QUEUE_TIMEOUT_S)
        for dispatcher in dispatchers:
            if dispatcher.error is not None:
                raise PipelineError(
                    f"dispatcher {dispatcher.name} failed"
                ) from dispatcher.error
        wall = time.perf_counter() - start
        return ThreadedRunResult(
            n_tasks=n_tasks,
            wall_seconds=wall,
            chunk_stage_counts={
                d.chunk_index: d.stages_executed for d in dispatchers
            },
            validated=validate,
        )

    # ------------------------------------------------------------------
    def _load_task(self, task: TaskObject, index: int) -> TaskObject:
        payload = self.application.make_task(index)
        for name, array in payload.items():
            task[name] = array
        task.set_constant("task_index", index)
        return task

    def _finish_task(self, task: TaskObject, index: int,
                     on_complete: Optional[Callable[[TaskObject, int], None]],
                     validate: bool) -> None:
        if validate and self.application.validate_task is not None:
            self.application.validate_task(task)
        if on_complete is not None:
            on_complete(task, index)


def _check_chunk_cover(application: Application,
                       chunks: Sequence[Chunk]) -> None:
    """Chunks must tile [0, num_stages) in order with distinct PUs."""
    if not chunks:
        raise PipelineError("a pipeline needs at least one chunk")
    expected = 0
    seen_pus: List[str] = []
    for chunk in chunks:
        if chunk.start != expected:
            raise PipelineError(
                f"chunk gap/overlap at stage {expected} (chunk starts at "
                f"{chunk.start})"
            )
        expected = chunk.stop
        if chunk.pu_class in seen_pus:
            raise PipelineError(
                f"PU class {chunk.pu_class!r} used by two chunks - stages "
                "on one PU must form a single chunk (constraint C2)"
            )
        seen_pus.append(chunk.pu_class)
    if expected != application.num_stages:
        raise PipelineError(
            f"chunks cover {expected} stages, application has "
            f"{application.num_stages}"
        )
