"""Homogeneous baselines (paper section 5.1).

The baselines use the same kernels as BetterTogether but run every stage
on a single PU type:

* **GPU-only** - the accelerator-oriented deployment: offload everything.
* **CPU-only** - big cores only; the paper found mixing big and little
  cores degrades CPU-only performance through load imbalance, so big-only
  is the strongest CPU baseline.

Both are measured through the same pipeline executor as BetterTogether's
schedules (a single chunk still multi-buffers), so comparisons are
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.runtime.simulator import SimulatedPipelineExecutor
from repro.soc.platform import Platform
from repro.soc.pu import BIG, GPU


def cpu_only_schedule(application: Application) -> Schedule:
    """Every stage on the big cores."""
    return Schedule.homogeneous(application.num_stages, BIG)


def gpu_only_schedule(application: Application) -> Schedule:
    """Every stage offloaded to the GPU."""
    return Schedule.homogeneous(application.num_stages, GPU)


@dataclass(frozen=True)
class BaselineResult:
    """Measured homogeneous baselines for one (app, platform) pair."""

    application: str
    platform: str
    cpu_latency_s: float
    gpu_latency_s: float

    @property
    def best_latency_s(self) -> float:
        return min(self.cpu_latency_s, self.gpu_latency_s)

    @property
    def best_name(self) -> str:
        return "cpu" if self.cpu_latency_s <= self.gpu_latency_s else "gpu"

    def as_row(self) -> Tuple[str, str]:
        """Table 3 cell: 'CPU | GPU' in ms with the winner implied."""
        return (
            f"{self.cpu_latency_s * 1e3:.2f}",
            f"{self.gpu_latency_s * 1e3:.2f}",
        )


def measure_schedule(application: Application, schedule: Schedule,
                     platform: Platform, n_tasks: int = 30) -> float:
    """Measured steady per-task latency of any schedule (seconds)."""
    executor = SimulatedPipelineExecutor(
        application, schedule.chunks(), platform
    )
    return executor.measure_per_task_latency(n_tasks)


def measure_baselines(application: Application, platform: Platform,
                      n_tasks: int = 30) -> BaselineResult:
    """Measure both homogeneous baselines (Table 3's raw numbers)."""
    return BaselineResult(
        application=application.name,
        platform=platform.name,
        cpu_latency_s=measure_schedule(
            application, cpu_only_schedule(application), platform, n_tasks
        ),
        gpu_latency_s=measure_schedule(
            application, gpu_only_schedule(application), platform, n_tasks
        ),
    )


def per_stage_baseline_times(
    application: Application, platform: Platform
) -> Dict[str, Dict[str, float]]:
    """Isolated per-stage latency on each PU (Fig. 1's bars), measured
    through the profiler's black-box path."""
    from repro.core.profiler import ISOLATED, BTProfiler

    table = BTProfiler(platform).profile(application, mode=ISOLATED)
    return {
        stage: table.row(stage) for stage in application.stage_names
    }
