"""Benchmarks for the DES hot path (autotuning re-runs the simulator
hundreds of times, so per-phase cost is the level-3 bottleneck).

Two engines implement the event loop (``REPRO_SIM_ENGINE``): the
default ``vector`` batch-event kernel and the scalar ``reference``
oracle.  This module times both on the 300-task AlexNet-sparse case,
times ``run_batch`` against the construct-an-executor-per-window loop
the call sites used to follow, and writes every case's wall time to
``BENCH_simulator.json`` at the repo root - the perf trajectory CI
uploads so each PR shows its speed delta.  The engine-vs-reference
case doubles as the CI perf gate: the vectorized engine must not be
slower than the reference it replaced.
"""

import os
import time

import pytest

from repro.apps import build_alexnet_sparse
from repro.core import Chunk
from repro.runtime import SimulatedPipelineExecutor
from repro.serialization import write_json_report
from repro.soc import get_platform

N_TASKS = 300
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_simulator.json",
)

#: case name -> {"mean_s": ..., "min_s": ...} (plus derived ratios),
#: flushed to BENCH_simulator.json when the module finishes.
RESULTS = {}


def _best_of(fn, rounds=5):
    """(best, mean) wall seconds over ``rounds`` calls."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times), sum(times) / len(times)


def _record(case, min_s, mean_s, **extra):
    entry = {"min_s": round(min_s, 6), "mean_s": round(mean_s, 6)}
    entry.update(extra)
    RESULTS[case] = entry


@pytest.fixture(scope="module")
def make_executor():
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    chunks = [Chunk(0, 5, "big"),
              Chunk(5, application.num_stages, "gpu")]

    def build(engine=None):
        return SimulatedPipelineExecutor(application, chunks, platform,
                                         engine=engine)

    return build


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write collected timings to BENCH_simulator.json on teardown."""
    yield
    if not RESULTS:
        return
    payload = {
        "benchmark": "simulator",
        "n_tasks": N_TASKS,
        "case": "alexnet-sparse big(0:5)|gpu(5:9) on pixel7a",
        "results": dict(sorted(RESULTS.items())),
    }
    write_json_report(BENCH_PATH, payload)


def test_simulated_run_wall_time(benchmark, make_executor):
    executor = make_executor()
    result = benchmark(executor.run, N_TASKS)
    assert result.n_tasks == N_TASKS
    _record("vector_run", benchmark.stats["min"],
            benchmark.stats["mean"], engine="vector")
    # Generous absolute ceiling for slow CI machines; the paper-scale
    # autotuning campaign runs ~20 of these back to back.
    assert benchmark.stats["mean"] < 0.25


def test_reference_engine_wall_time(benchmark, make_executor):
    executor = make_executor(engine="reference")
    result = benchmark(executor.run, N_TASKS)
    assert result.n_tasks == N_TASKS
    _record("reference_run", benchmark.stats["min"],
            benchmark.stats["mean"], engine="reference")


def test_vector_engine_not_slower_than_reference(make_executor):
    """The CI perf gate: on warm executors (caches populated), the
    vectorized engine's best-of-N must not lose to the reference loop
    it replaced - a regression here silently slows every autotuning
    round, serve tick, and soak in the repo."""
    vector = make_executor()
    reference = make_executor(engine="reference")
    vector.run(N_TASKS)
    reference.run(N_TASKS)

    vec_min, vec_mean = _best_of(lambda: vector.run(N_TASKS))
    ref_min, ref_mean = _best_of(lambda: reference.run(N_TASKS))
    speedup = ref_min / vec_min
    _record("engine_vs_reference", vec_min, vec_mean,
            reference_min_s=round(ref_min, 6),
            reference_mean_s=round(ref_mean, 6),
            speedup=round(speedup, 3))
    print(f"\nvector best {vec_min * 1e3:.2f} ms, "
          f"reference best {ref_min * 1e3:.2f} ms "
          f"({speedup:.2f}x)")
    assert vec_min <= ref_min


def test_run_batch_beats_per_window_executors(make_executor):
    """A batched round (one executor, warm caches) must beat the old
    call-site pattern of constructing a fresh executor per window."""
    windows, tasks = 12, 30
    batch_executor = make_executor()
    batch_executor.run(tasks)  # populate caches once, like a real round

    def batched():
        batch_executor.run_batch([tasks] * windows)

    def per_window_loop():
        for _ in range(windows):
            make_executor().run(tasks)

    batch_min, batch_mean = _best_of(batched, rounds=3)
    loop_min, loop_mean = _best_of(per_window_loop, rounds=3)
    speedup = loop_min / batch_min
    _record("batch_vs_loop", batch_min, batch_mean,
            loop_min_s=round(loop_min, 6),
            loop_mean_s=round(loop_mean, 6),
            windows=windows, tasks_per_window=tasks,
            speedup=round(speedup, 3))
    print(f"\nbatch best {batch_min * 1e3:.2f} ms, "
          f"per-window loop best {loop_min * 1e3:.2f} ms "
          f"({speedup:.2f}x)")
    assert batch_min < loop_min


def test_noise_cache_makes_reruns_cheaper(make_executor):
    """A warm executor must skip every digest + RNG construction when
    re-running the same schedule (exactly what autotuning and adaptive
    windows do).  Asserted via the executor's miss counter - wall-clock
    cold-vs-warm comparisons flake on loaded CI machines - with timings
    printed for the curious."""
    executor = make_executor()
    start = time.perf_counter()
    executor.run(N_TASKS)
    cold_s = time.perf_counter() - start
    cold_misses = executor.noise_cache_misses
    assert cold_misses > 0

    start = time.perf_counter()
    executor.run(N_TASKS)
    warm_s = time.perf_counter() - start
    print(f"\ncold run {cold_s * 1e3:.1f} ms "
          f"({cold_misses} digest constructions), "
          f"warm run {warm_s * 1e3:.1f} ms (0 constructions)")
    assert executor.noise_cache_misses == cold_misses
