"""Process-wide metrics registry: counters, gauges, histograms.

Complements the tracer with aggregates that don't need a timeline:
``retry.count``, ``admission.rejects``, ``solver.nodes``,
``spsc.queue_depth`` and friends.  Naming convention is
``<subsystem>.<noun>`` in lowercase dotted form - see
``docs/architecture.md`` ("Observability").

Like the tracer, the global registry is **disabled by default**; every
instrumentation site guards on ``metrics().enabled`` so uninstrumented
runs pay nothing.  When enabled, :func:`repro.serialization.
write_json_report` snapshots the registry into every JSON report it
writes, so a soak report carries its own counters.

Snapshots are deterministic: keys sort lexicographically and histogram
summaries derive only from the observed values (no wall time).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.timeseries import TimeSeriesStore


def percentile(samples: Sequence[float], q: float) -> float:
    """Canonical linear-interpolation percentile (numpy's default).

    The single implementation behind every report quantile
    (``serve.metrics.percentile`` re-raises its errors as
    ``ServeError`` for its callers).  Raises a structured
    :class:`~repro.errors.ReproError` on an empty sample set or an
    out-of-range ``q`` rather than returning a silent sentinel.
    """
    if not samples:
        raise ReproError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile q={q} out of [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


# Backwards-compatible module-private alias (pre-dedup name).
_percentile = percentile


class MetricsRegistry:
    """Counters, gauges and histograms behind one lock.

    Disabled instances short-circuit every method, so call sites may
    either guard on :attr:`enabled` themselves (hot paths) or call
    unconditionally (cold paths).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        # Lazily created on the first series_point so registries that
        # never record a series stay exactly as cheap (and snapshot to
        # exactly the same bytes) as before.
        self._series: Optional[TimeSeriesStore] = None

    def counter(self, name: str, value: float = 1) -> Optional[float]:
        """Add ``value`` (default 1) to the monotonic counter ``name``.

        Returns the new total (None when disabled) so tick loops can
        mirror counters into per-tick time series without re-reading.
        """
        if not self.enabled:
            return None
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
            return total

    def gauge(self, name: str, value: float) -> None:
        """Set the last-write-wins gauge ``name`` to ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    def series_point(self, name: str, tick: int, value: float) -> None:
        """Append one ``(tick, value)`` point to the time series
        ``name`` (bounded per series; see :mod:`repro.obs.timeseries`)."""
        if not self.enabled:
            return
        with self._lock:
            if self._series is None:
                self._series = TimeSeriesStore()
            store = self._series
        store.point(name, tick, value)

    @property
    def series(self) -> Optional[TimeSeriesStore]:
        """The time-series store, if any points were recorded."""
        return self._series

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic summary of everything recorded so far."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: list(v) for k, v in self._histograms.items()}
        summary: Dict[str, Any] = {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {},
        }
        for name in sorted(histograms):
            values = histograms[name]
            summary["histograms"][name] = {
                "count": len(values),
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "p50": percentile(values, 50.0),
                "p95": percentile(values, 95.0),
            }
        # Conditional so registries without series snapshot to the same
        # bytes as before the store existed.
        store = self._series
        if store is not None and len(store) > 0:
            summary["series"] = store.snapshot()
        return summary


_GLOBAL = MetricsRegistry(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-global registry; disabled unless inside a capture."""
    return _GLOBAL


def set_metrics(instance: MetricsRegistry) -> MetricsRegistry:
    """Install ``instance`` as the global registry; returns the old one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = instance
    return previous
