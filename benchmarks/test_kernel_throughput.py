"""Host-side throughput benchmarks for the functional kernels.

These time the *actual numpy kernels* (not the virtual SoC) on
paper-scale inputs - the working set a contributor touches when
optimizing a kernel, and a regression fence for the functional layer.
"""

import numpy as np
import pytest

from repro.kernels import (
    allocate_tree,
    build_radix_tree_cpu,
    build_radix_tree_gpu,
    conv2d_relu_cpu,
    morton_encode_cpu,
    prune_to_csr,
    sort_codes_gpu,
    sparse_conv2d_relu_cpu,
)
from repro.kernels.nn import ConvSpec

N_POINTS = 100_000


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    return rng.random((N_POINTS, 3), dtype=np.float32)


@pytest.fixture(scope="module")
def sorted_codes(cloud):
    codes = np.zeros(N_POINTS, dtype=np.uint32)
    morton_encode_cpu(cloud, codes)
    return np.unique(np.sort(codes))


def test_morton_encode_throughput(benchmark, cloud):
    codes = np.zeros(N_POINTS, dtype=np.uint32)
    benchmark(morton_encode_cpu, cloud, codes)
    assert codes.max() < (1 << 30)


def test_radix_sort_gpu_variant_throughput(benchmark, cloud):
    codes = np.zeros(N_POINTS, dtype=np.uint32)
    morton_encode_cpu(cloud, codes)
    out = np.zeros(N_POINTS, dtype=np.uint32)
    benchmark(sort_codes_gpu, codes, out)
    assert np.all(out[1:] >= out[:-1])


def test_karras_tree_cpu_throughput(benchmark, sorted_codes):
    def build():
        tree = allocate_tree(len(sorted_codes))
        build_radix_tree_cpu(sorted_codes, tree)
        return tree

    tree = benchmark(build)
    assert tree.num_internal == len(sorted_codes) - 1


def test_karras_tree_gpu_variant_throughput(benchmark, sorted_codes):
    def build():
        tree = allocate_tree(len(sorted_codes))
        build_radix_tree_gpu(sorted_codes, tree)
        return tree

    tree = benchmark(build)
    assert tree.num_internal == len(sorted_codes) - 1


def test_dense_conv_throughput(benchmark):
    spec = ConvSpec(in_channels=96, out_channels=192, kernel_size=5,
                    padding=2)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((96, 16, 16)).astype(np.float32)
    w = rng.standard_normal((192, 96, 5, 5)).astype(np.float32)
    b = rng.standard_normal(192).astype(np.float32)
    out = np.zeros((192, 16, 16), dtype=np.float32)
    benchmark(conv2d_relu_cpu, x, w, b, out, spec)
    assert np.all(out >= 0.0)


def test_sparse_conv_throughput(benchmark):
    spec = ConvSpec(in_channels=96, out_channels=192, kernel_size=5,
                    padding=2)
    rng = np.random.default_rng(2)
    x = rng.standard_normal((96, 16, 16)).astype(np.float32)
    w = rng.standard_normal((192, 96, 5, 5)).astype(np.float32)
    b = rng.standard_normal(192).astype(np.float32)
    csr = prune_to_csr(w, sparsity=0.995)
    out = np.zeros((192, 16, 16), dtype=np.float32)
    benchmark(sparse_conv2d_relu_cpu, x, csr, b, out, spec)
    assert np.all(out >= 0.0)
