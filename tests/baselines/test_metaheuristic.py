"""Tests for the metaheuristic (MOSCOA-style) search baseline."""

import math

import pytest

from repro.apps import build_octree_application
from repro.baselines import MetaheuristicOptimizer
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.errors import SchedulingError
from repro.soc import get_platform


@pytest.fixture(scope="module")
def setting():
    platform = get_platform("pixel7a")
    app = build_octree_application(n_points=20_000)
    table = BTProfiler(platform, repetitions=3).profile(app).restricted(
        platform.schedulable_classes()
    )
    return app, table


class TestSearch:
    def test_finds_valid_contiguous_schedules(self, setting):
        app, table = setting
        result = MetaheuristicOptimizer(app, table, seed=1).optimize(k=5)
        assert 1 <= len(result.candidates) <= 5
        for candidate in result.candidates:
            assert candidate.schedule.is_contiguous()
            assert candidate.schedule.num_stages == app.num_stages

    def test_predicted_latency_consistent(self, setting):
        app, table = setting
        result = MetaheuristicOptimizer(app, table, seed=2).optimize(k=3)
        for candidate in result.candidates:
            assert candidate.predicted_latency_s == pytest.approx(
                candidate.schedule.predicted_latency(app, table)
            )

    def test_deterministic_per_seed(self, setting):
        app, table = setting
        a = MetaheuristicOptimizer(app, table, seed=3).optimize(k=1)
        b = MetaheuristicOptimizer(app, table, seed=3).optimize(k=1)
        assert (a.best.schedule.assignments
                == b.best.schedule.assignments)

    def test_never_beats_exact_optimum(self, setting):
        """The exact solver's unfiltered optimum is a floor."""
        app, table = setting
        exact = BTOptimizer(app, table, k=1,
                            gap_slack=math.inf).optimize()
        meta = MetaheuristicOptimizer(
            app, table, restarts=12, moves_per_restart=300, seed=4
        ).optimize(k=1)
        assert (meta.best.predicted_latency_s
                >= exact.best.predicted_latency_s - 1e-12)

    def test_usually_gets_close_to_exact(self, setting):
        app, table = setting
        exact = BTOptimizer(app, table, k=1,
                            gap_slack=math.inf).optimize()
        meta = MetaheuristicOptimizer(
            app, table, restarts=12, moves_per_restart=300, seed=5
        ).optimize(k=1)
        assert (meta.best.predicted_latency_s
                <= exact.best.predicted_latency_s * 1.5)

    def test_more_budget_never_hurts(self, setting):
        app, table = setting
        small = MetaheuristicOptimizer(
            app, table, restarts=2, moves_per_restart=20, seed=6
        ).optimize(k=1)
        # Same seed, strictly larger budget explores a superset... not
        # guaranteed per-path, so compare a generous budget instead.
        large = MetaheuristicOptimizer(
            app, table, restarts=16, moves_per_restart=400, seed=6
        ).optimize(k=1)
        assert (large.best.predicted_latency_s
                <= small.best.predicted_latency_s * 1.05)

    def test_log_populated(self, setting):
        app, table = setting
        optimizer = MetaheuristicOptimizer(app, table, seed=7)
        optimizer.optimize(k=1)
        assert optimizer.log.evaluations > 0
        assert optimizer.log.restarts == optimizer.restarts

    def test_validation(self, setting):
        app, table = setting
        with pytest.raises(SchedulingError):
            MetaheuristicOptimizer(app, table, restarts=0)
