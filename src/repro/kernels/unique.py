"""Stage 3 of the Octree pipeline: duplicate removal over sorted codes.

Points that quantize to the same Morton cell collapse to one spatial
entry.  The CPU variant is a single masked compaction; the GPU variant is
the canonical three-launch stream compaction: flag heads, exclusive-scan
the flags, scatter survivors.

Because the survivor count is data-dependent, the stage writes the count
into a one-element buffer - downstream stages size themselves from it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.kernels.scan import exclusive_scan_gpu
from repro.soc.workprofile import WorkProfile


def _check(sorted_codes: np.ndarray, unique_codes: np.ndarray,
           count_out: np.ndarray) -> None:
    if len(unique_codes) < len(sorted_codes):
        raise KernelError("unique output must be at least input-sized")
    if len(count_out) < 1:
        raise KernelError("count_out needs one element")


def unique_cpu(sorted_codes: np.ndarray, unique_codes: np.ndarray,
               count_out: np.ndarray) -> None:
    """Host variant: boolean mask + fancy-index compaction."""
    _check(sorted_codes, unique_codes, count_out)
    n = len(sorted_codes)
    if n == 0:
        count_out[0] = 0
        return
    heads = np.empty(n, dtype=bool)
    heads[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=heads[1:])
    survivors = sorted_codes[heads]
    unique_codes[: len(survivors)] = survivors
    count_out[0] = len(survivors)


def unique_gpu(sorted_codes: np.ndarray, unique_codes: np.ndarray,
               count_out: np.ndarray) -> None:
    """Device variant: flag / scan / scatter, three launches."""
    _check(sorted_codes, unique_codes, count_out)
    n = len(sorted_codes)
    if n == 0:
        count_out[0] = 0
        return
    # Launch 1: head flags.
    flags = np.empty(n, dtype=np.int64)
    flags[0] = 1
    flags[1:] = (sorted_codes[1:] != sorted_codes[:-1]).astype(np.int64)
    # Launch 2: exclusive scan gives each survivor its output slot.
    slots = np.empty(n, dtype=np.int64)
    exclusive_scan_gpu(flags, slots)
    # Launch 3: scatter.
    total = int(slots[-1] + flags[-1])
    mask = flags.astype(bool)
    unique_codes[slots[mask]] = sorted_codes[mask]
    count_out[0] = total


def unique_work_profile(n: int) -> WorkProfile:
    """Regular neighbour-compare plus a compaction scatter."""
    return WorkProfile(
        flops=3.0 * max(n, 1),
        bytes_moved=3.0 * 4.0 * max(n, 1),
        parallelism=float(max(n // 2, 1)),
        parallel_fraction=0.9,
        divergence=0.15,
        irregularity=0.25,
        cpu_efficiency=0.55,
        gpu_efficiency=0.3,
        gpu_cuda_efficiency=0.5,
        gpu_launches=3,
    )
