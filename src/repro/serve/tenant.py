"""Tenant specifications and lifecycle records for the serving layer.

A *tenant* is one streaming pipeline job admitted onto the shared
virtual SoC: an application, a priority, and a finite stream of
execution windows.  The registry entry (:class:`TenantRecord`) carries
everything the server's control loops need - the deployed schedule,
the PU partition, the cached candidate set, and the measured history
the drift detector watches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

from repro.core.optimizer import ScheduleCandidate
from repro.core.plan_cache import CachedPlan
from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.errors import ServeError

# Lifecycle states.
PENDING = "pending"      # submitted, admission not yet evaluated
QUEUED = "queued"        # admission deferred (backpressure queue)
RUNNING = "running"      # admitted, executing windows
COMPLETED = "completed"  # all requested windows served
REJECTED = "rejected"    # admission refused the job
EVICTED = "evicted"      # preempted to relieve contention
FAILED = "failed"        # execution error (recorded, not raised)

TERMINAL_STATES = (COMPLETED, REJECTED, EVICTED, FAILED)


@dataclass(frozen=True)
class TenantSpec:
    """One pipeline job as submitted to the server.

    Attributes:
        name: Unique tenant/job id.
        application: The streaming pipeline to serve.
        priority: Higher values survive contention longer; the
            eviction fallback always removes the lowest priority.
        windows: Execution windows requested (finite jobs; a window is
            the drift-detection quantum, as in
            :class:`~repro.runtime.adaptive.AdaptivePipeline`).
        window_tasks: Tasks streamed per window.
        required_classes: PU classes the tenant insists on (e.g. a
            job that must have the GPU).  Admission only considers
            candidates covering them - and therefore refuses the job
            outright when another tenant already holds one.  A hard
            constraint: rescheduling keeps honouring it.
        preferred_classes: Soft placement bias: admission favours
            candidates covering these when any fit, but falls back
            freely - and the rescheduler may leave them to escape
            contention.
    """

    name: str
    application: Application
    priority: int = 0
    windows: int = 8
    window_tasks: int = 10
    required_classes: FrozenSet[str] = frozenset()
    preferred_classes: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("a tenant needs a non-empty name")
        if self.windows < 1:
            raise ServeError("windows must be >= 1")
        if self.window_tasks < 2:
            raise ServeError("window_tasks must be >= 2")
        object.__setattr__(
            self, "required_classes", frozenset(self.required_classes)
        )
        object.__setattr__(
            self, "preferred_classes", frozenset(self.preferred_classes)
        )


@dataclass
class WindowResult:
    """One served window's measurement."""

    window_index: int
    schedule: Schedule
    measured_latency_s: float
    external_busy_classes: List[str]
    rescheduled: bool = False
    regime: str = "isolated"  # closer to isolated or interference profile
    #: Interference blame decomposition of this window's slowdown
    #: (:class:`repro.obs.attribution.BlameMatrix`); only populated when
    #: the server runs with ``attribution=True``.
    blame: Optional[object] = None


@dataclass
class TenantRecord:
    """Registry entry: the server-side state of one tenant."""

    spec: TenantSpec
    status: str = PENDING
    plan: Optional[CachedPlan] = None
    schedule: Optional[Schedule] = None
    partition: FrozenSet[str] = frozenset()
    candidates: Sequence[ScheduleCandidate] = ()
    windows_done: int = 0
    history: List[WindowResult] = field(default_factory=list)
    reschedules: int = 0
    status_detail: str = ""
    admission_order: int = -1
    #: Latency of the first window after (re)deployment - the drift
    #: detector's reference point.
    baseline_latency_s: Optional[float] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    def window_latencies(self) -> List[float]:
        return [w.measured_latency_s for w in self.history]

    def per_item_latencies(self) -> List[float]:
        """Per-task latency samples: each window's steady per-task
        latency weighted by its task count (the p95 population)."""
        out: List[float] = []
        for window in self.history:
            out.extend(
                [window.measured_latency_s] * self.spec.window_tasks
            )
        return out
