"""The fleet acceptance soak: chaos, recovery, determinism.

The issue's bar, verbatim:

* a seeded soak across >= 4 SoCs and >= 12 tenants with a mid-run
  shard kill, a gray failure, and a delayed rejoin, where every tenant
  not deliberately shed completes on a surviving shard;
* the same seed reproduces byte-identical ``FleetReport``s;
* a chaos run with failover enabled strictly beats the same run with
  failover disabled on surviving-tenant p95 latency (measured as the
  per-placement-segment slowdown the fleet is accountable for).
"""

import pytest

from repro.obs import capture
from repro.serialization import write_json_report
from repro.fleet import SHED, FleetSoakScenario, run_fleet_soak
from repro.fleet.scenario import WINDOWS_CYCLE

SCENARIO = FleetSoakScenario()

TIMEOUT_S = 600.0


@pytest.fixture(scope="module")
def soak():
    router, report = run_fleet_soak(SCENARIO, failover=True,
                                    timeout_s=TIMEOUT_S)
    return router, report


@pytest.fixture(scope="module")
def baseline():
    router, report = run_fleet_soak(SCENARIO, failover=False,
                                    timeout_s=TIMEOUT_S)
    return router, report


def _failover_causes(report):
    return {e["shard"]: str(e["cause"])
            for e in report.timeline if e["event"] == "failover"}


class TestRecovery:
    def test_every_non_shed_tenant_completes(self, soak):
        _, report = soak
        statuses = {m.status for m in report.tenants.values()}
        assert statuses <= {"completed", SHED}
        completed = [m for m in report.tenants.values()
                     if m.status == "completed"]
        assert len(completed) >= SCENARIO.n_tenants - 1
        for metric in completed:
            windows = WINDOWS_CYCLE[
                int(metric.tenant.split("-")[1]) % len(WINDOWS_CYCLE)
            ]
            assert metric.windows_served == windows

    def test_all_three_failure_shapes_triggered_failover(self, soak):
        _, report = soak
        causes = _failover_causes(report)
        assert "heartbeat lost" in causes[SCENARIO.gray_shard]
        assert "crashed" in causes[SCENARIO.crash_shard]
        assert "SLO breach" in causes[SCENARIO.degrade_shard]

    def test_crash_victims_complete_on_other_shards(self, soak):
        _, report = soak
        rescued = [
            m for m in report.tenants.values()
            if m.status == "completed"
            and SCENARIO.crash_shard in list(m.shards)[:-1]
        ]
        assert rescued
        for metric in rescued:
            assert list(metric.shards)[-1] != SCENARIO.crash_shard
            assert metric.migrations >= 1

    def test_crashed_shard_rejoins_as_new_generation(self, soak):
        _, report = soak
        assert (report.shards[SCENARIO.crash_shard]["generation"]
                == 2)
        # The gray shard never actually restarted: same generation.
        assert report.shards[SCENARIO.gray_shard]["generation"] == 1
        # The rejoined shard re-entered service: placements landed on
        # it at or after the rejoin tick.
        rejoined = [
            e for e in report.timeline
            if e["event"] in ("place", "migrate")
            and e.get("shard") == SCENARIO.crash_shard
            and e["tick"] >= SCENARIO.rejoin_tick
        ]
        assert rejoined

    def test_breakers_cycled_and_settled(self, soak):
        _, report = soak
        transitions = [e for e in report.timeline
                       if e["event"] == "breaker"]
        # Each failover tripped a breaker; the survivors closed again.
        assert {e["shard"] for e in transitions} >= {
            SCENARIO.gray_shard, SCENARIO.crash_shard,
            SCENARIO.degrade_shard,
        }
        assert any(e["to"] == "half-open" for e in transitions)
        for shard in report.shards.values():
            assert shard["state"] == "healthy"
            assert shard["breaker"] == "closed"

    def test_plan_cache_was_shared_across_shards(self, soak):
        _, report = soak
        # Far more admissions happened than plans were profiled: the
        # fleet reused cached interference tables across shards.
        assert report.plan_cache["hits"] > report.plan_cache["misses"]


class TestFailoverBeatsStranding:
    def test_failover_strictly_improves_surviving_p95(
        self, soak, baseline
    ):
        _, on_report = soak
        _, off_report = baseline
        assert on_report.surviving_p95_slowdown > 0.0
        assert (on_report.surviving_p95_slowdown
                < off_report.surviving_p95_slowdown)

    def test_disabled_failover_strands_crash_victims(self, baseline):
        _, report = baseline
        failed = [m for m in report.tenants.values()
                  if m.status == "failed"]
        assert failed
        assert all(list(m.shards)[-1] == SCENARIO.crash_shard
                   for m in failed)
        assert "failover" not in report.counts
        assert "migrate" not in report.counts


class TestDeterminism:
    def test_reports_are_byte_identical(self, soak, tmp_path):
        _, first_report = soak
        _, second_report = run_fleet_soak(SCENARIO, failover=True,
                                          timeout_s=TIMEOUT_S)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        write_json_report(first, first_report.to_dict())
        write_json_report(second, second_report.to_dict())
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_differs(self, soak):
        _, report = soak
        other = FleetSoakScenario(seed=8)
        _, other_report = run_fleet_soak(other, failover=True,
                                         timeout_s=TIMEOUT_S)
        assert (other_report.to_dict()["timeline"]
                != report.to_dict()["timeline"])


class TestObservability:
    @pytest.fixture(scope="class")
    def traced(self):
        with capture() as cap:
            run_fleet_soak(SCENARIO, failover=True,
                           timeout_s=TIMEOUT_S)
            return cap.events, cap.metrics.snapshot()

    def test_fleet_counters_recorded(self, traced):
        _, snapshot = traced
        counters = snapshot["counters"]
        assert counters["fleet.failovers"] == 3
        assert counters["fleet.migrations"] >= 3
        assert counters["breaker.transitions"] >= 3
        assert counters["fleet.shed"] >= 0

    def test_shard_state_gauges_settle_healthy(self, traced):
        _, snapshot = traced
        gauges = snapshot["gauges"]
        for i in range(SCENARIO.n_shards):
            assert gauges[f"fleet.shard_state.soc{i}"] == 0.0

    def test_fleet_events_ride_named_tracks(self, traced):
        events, _ = traced
        fleet_events = [e for e in events if e.category == "fleet"]
        names = {e.name for e in fleet_events}
        assert {"fleet.tick", "fleet.failover", "fleet.migrate",
                "fleet.breaker", "fleet.shard_state"} <= names
        tracks = {e.track for e in fleet_events}
        assert any(t.startswith("shard:") for t in tracks)
        assert any(t.startswith("tenant:") for t in tracks)

    def test_ticks_nest_serve_layer_spans(self, traced):
        events, _ = traced
        by_id = {e.event_id: e for e in events}
        tick_ids = {e.event_id for e in events
                    if e.name == "fleet.tick"}
        # Shard serving work is parented under the fleet tick spans.
        nested = [e for e in events
                  if e.category == "serve" and e.parent_id in tick_ids]
        assert nested
