"""Invariant-linter driver: file collection, suppression, reporting.

``python -m repro lint [paths...]`` parses every ``.py`` file under the
given paths (the installed ``repro`` package by default), runs each
registered rule from :mod:`repro.analysis.rules` over the AST, filters
findings through ``# bt-lint: disable=...`` suppression comments, and
renders the result as text or JSON.  ``--strict`` turns any surviving
finding into a non-zero exit, which is how CI gates the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Finding, Rule, all_rules
from repro.errors import AnalysisError

#: ``# bt-lint: disable=RULE-ID[,RULE-ID...]`` (``ALL`` disables every
#: rule on that line).
_SUPPRESS_RE = re.compile(
    r"#\s*bt-lint:\s*disable=([A-Za-z0-9_\-, ]+)"
)


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict:
        """JSON-serialisable form of the report."""
        return {
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts,
        }

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number (1-based) -> rule ids suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {part.strip().upper()
               for part in match.group(1).split(",") if part.strip()}
        suppressions[lineno] = ids
    return suppressions


def _is_suppressed(finding: Finding,
                   suppressions: Dict[int, Set[str]]) -> bool:
    for lineno in (finding.line, finding.line - 1):
        ids = suppressions.get(lineno)
        if ids and ("ALL" in ids or finding.rule_id in ids):
            return True
    return False


def lint_source(
    source: str, path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one module's source; returns (findings, suppressed_count).

    Raises:
        AnalysisError: The source does not parse.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot lint {path}: {exc}") from exc
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    suppressed = 0
    for rule in (rules if rules is not None else all_rules()):
        if not rule.applies(path):
            continue
        for finding in rule.check(tree, path):
            if _is_suppressed(finding, suppressions):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, suppressed


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files.

    Raises:
        AnalysisError: A path does not exist.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"lint target {path} does not exist")
    return files


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``."""
    report = LintReport()
    for file_path in collect_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(
                f"cannot read {file_path}: {exc}"
            ) from exc
        findings, suppressed = lint_source(source, str(file_path),
                                           rules=rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    return report


def default_lint_target() -> Path:
    """The installed ``repro`` package directory (the repo baseline)."""
    return Path(__file__).resolve().parent.parent
