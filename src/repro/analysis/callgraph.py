"""Project-wide symbol table and call resolution for ``repro flow``.

The interprocedural taint pass needs to answer one question cheaply and
deterministically: *which project function does this call site invoke?*
This module builds the whole-program model behind that answer:

* :class:`FunctionInfo` - one function or method (qualified name,
  parameters, AST node, enclosing class).
* :class:`ModuleInfo`  - one parsed module: its dotted name, import
  alias table, top-level functions, classes and methods.
* :class:`Project`     - the aggregate, with :meth:`Project.resolve`
  mapping a call expression to its target.

Resolution is deliberately *under*-approximate: a call we cannot pin to
exactly one project function resolves to ``None`` and the taint engine
falls back to join-of-arguments propagation (taint is never laundered
by an unresolved call, but unresolved calls also never *add* sink
edges).  The supported shapes cover this codebase's idiom:

* bare names (module-local functions, ``from x import f`` aliases),
* ``self.method()`` / ``cls.method()`` (single-inheritance lookup
  through project base classes),
* ``module.func()`` / ``package.module.func()`` via import aliases,
* ``ClassName(...)`` constructors (resolved to the class, so field
  writes and ``__init__`` flows are modelled),
* unique-method-name fallback: ``obj.frob()`` where exactly one class
  in the project defines ``frob``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.astcache import ParsedModule

#: Method names too generic for the unique-name fallback: resolving
#: ``x.get(...)`` to some project method named ``get`` would be wrong
#: far more often than right.
_AMBIGUOUS_METHOD_NAMES = frozenset({
    "get", "run", "push", "pop", "close", "start", "stop", "join",
    "add", "append", "update", "items", "keys", "values", "copy",
    "format", "read", "write", "clear", "submit", "name", "check",
})


@dataclass
class FunctionInfo:
    """One project function or method."""

    qname: str
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    module: str
    path: str
    cls: Optional[str] = None  # enclosing class local name
    _params: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False)
    _kwonly: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False)

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def params(self) -> Tuple[str, ...]:
        """Positional-or-keyword parameter names, ``self``/``cls``
        stripped for methods (computed once; hot in the flow pass)."""
        if self._params is None:
            args = self.node.args
            names = [a.arg for a in args.posonlyargs] + \
                    [a.arg for a in args.args]
            if self.is_method and names and names[0] in ("self", "cls"):
                names = names[1:]
            self._params = tuple(names)
        return self._params

    @property
    def kwonly_params(self) -> Tuple[str, ...]:
        if self._kwonly is None:
            self._kwonly = tuple(
                a.arg for a in self.node.args.kwonlyargs)
        return self._kwonly


@dataclass
class ClassInfo:
    """One project class: its methods and project base classes."""

    qname: str
    name: str
    module: str
    path: str
    bases: Tuple[str, ...] = ()  # base names as written in source
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-body field names in declaration order (dataclass
    #: positional-constructor mapping).
    fields: Tuple[str, ...] = ()

    def init_params(self) -> Tuple[str, ...]:
        """Constructor parameter names: explicit ``__init__`` if
        present, else the dataclass field order."""
        init = self.methods.get("__init__")
        if init is not None:
            return init.params
        return self.fields


@dataclass
class ModuleInfo:
    """One module's symbols and import alias table."""

    modname: str
    path: str
    #: local alias -> fully qualified name (module or module.symbol).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Anchored at the last ``repro`` path component when present (the
    installed package), else the file stem - good enough for fixture
    trees, which resolve within one directory.
    """
    parts = list(Path(path).parts)
    stem = Path(path).stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


class Project:
    """Whole-program symbol table over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        # id(call.func) -> resolution.  A call node belongs to exactly
        # one module/function, and the project holds its tree alive, so
        # identity-keyed memoization is sound for this project's
        # lifetime (resolution is static).
        self._resolved: Dict[int, Optional[
            Union[FunctionInfo, ClassInfo]]] = {}
        self._all_functions: Optional[List[FunctionInfo]] = None
        self._functions_by_path: Optional[
            Dict[str, List[FunctionInfo]]] = None

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, parsed: Iterable[ParsedModule]) -> "Project":
        project = cls()
        for module in parsed:
            project._add_module(module)
        return project

    def _add_module(self, parsed: ParsedModule) -> None:
        modname = module_name_for(parsed.path)
        info = ModuleInfo(modname=modname, path=parsed.path)
        for node in parsed.tree.body:
            self._collect_top_level(node, info)
        self.modules[modname] = info

    def _collect_top_level(self, node: ast.stmt, info: ModuleInfo) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports: resolve against the module package.
                package = info.modname.rsplit(".", node.level or 1)[0] \
                    if "." in info.modname else info.modname
                base = (f"{package}.{node.module}" if node.module
                        else package)
            else:
                base = node.module
            for alias in node.names:
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qname=f"{info.modname}.{node.name}", name=node.name,
                node=node, module=info.modname, path=info.path,
            )
            info.functions[node.name] = fn
            self.functions[fn.qname] = fn
        elif isinstance(node, ast.ClassDef):
            ci = ClassInfo(
                qname=f"{info.modname}.{node.name}", name=node.name,
                module=info.modname, path=info.path,
                bases=tuple(b for b in map(_base_name, node.bases) if b),
            )
            fields: List[str] = []
            for item in node.body:
                if (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    fields.append(item.target.id)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            fields.append(target.id)
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        qname=f"{ci.qname}.{item.name}", name=item.name,
                        node=item, module=info.modname, path=info.path,
                        cls=node.name,
                    )
                    ci.methods[item.name] = method
                    self.functions[method.qname] = method
                    self._methods_by_name.setdefault(
                        item.name, []).append(method)
            ci.fields = tuple(fields)
            info.classes[node.name] = ci
            self.classes[ci.qname] = ci
            self._classes_by_name.setdefault(node.name, []).append(ci)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / version-guarded imports and defs.
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.stmt):
                    self._collect_top_level(sub, info)

    # -- resolution ----------------------------------------------------
    def all_functions(self) -> List[FunctionInfo]:
        """Every function and method, in deterministic qname order.

        Memoised: construction is finished before the first call, and
        the analyses ask once per module they visit.
        """
        if self._all_functions is None:
            self._all_functions = [
                self.functions[q] for q in sorted(self.functions)
            ]
        return self._all_functions

    def functions_in(self, path: str) -> List[FunctionInfo]:
        """The functions defined in one file, in qname order."""
        index = self._functions_by_path
        if index is None:
            index = {}
            for fn in self.all_functions():
                index.setdefault(fn.path, []).append(fn)
            self._functions_by_path = index
        return index.get(path, [])

    def class_by_local_name(self, name: str,
                            module: ModuleInfo) -> Optional[ClassInfo]:
        ci = module.classes.get(name)
        if ci is not None:
            return ci
        qualified = module.imports.get(name)
        if qualified is not None and qualified in self.classes:
            return self.classes[qualified]
        candidates = self._classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def method_on(self, cls: ClassInfo,
                  method: str) -> Optional[FunctionInfo]:
        """Look up a method on a class, walking project base classes."""
        seen = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qname in seen:
                continue
            seen.add(current.qname)
            if method in current.methods:
                return current.methods[method]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                base_ci = self.class_by_local_name(base, module)
                if base_ci is not None:
                    queue.append(base_ci)
        return None

    def resolve(
        self, func: ast.expr, module: ModuleInfo,
        enclosing_class: Optional[str] = None,
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """The unique project target of a call expression, if known."""
        key = id(func)
        if key in self._resolved:
            return self._resolved[key]
        if isinstance(func, ast.Name):
            result = self._resolve_name(func.id, module)
        elif isinstance(func, ast.Attribute):
            result = self._resolve_attribute(func, module,
                                             enclosing_class)
        else:
            result = None
        self._resolved[key] = result
        return result

    def _resolve_name(
        self, name: str, module: ModuleInfo,
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        qualified = module.imports.get(name)
        if qualified is not None:
            if qualified in self.functions:
                return self.functions[qualified]
            if qualified in self.classes:
                return self.classes[qualified]
        return None

    def _resolve_attribute(
        self, func: ast.Attribute, module: ModuleInfo,
        enclosing_class: Optional[str],
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and enclosing_class:
                ci = module.classes.get(enclosing_class)
                if ci is not None:
                    found = self.method_on(ci, attr)
                    if found is not None:
                        return found
            # module alias: ``serialization.save(...)``
            qualified = module.imports.get(base.id)
            if qualified is not None:
                dotted = f"{qualified}.{attr}"
                if dotted in self.functions:
                    return self.functions[dotted]
                if dotted in self.classes:
                    return self.classes[dotted]
            # ``ClassName.method(...)`` (unbound / classmethod use)
            ci = self.class_by_local_name(base.id, module) \
                if base.id[:1].isupper() else None
            if ci is not None:
                return self.method_on(ci, attr)
        elif isinstance(base, ast.Attribute):
            dotted = _dotted(func)
            if dotted:
                if dotted in self.functions:
                    return self.functions[dotted]
                head = dotted.split(".", 1)[0]
                qualified = module.imports.get(head)
                if qualified is not None:
                    rebased = dotted.replace(head, qualified, 1)
                    if rebased in self.functions:
                        return self.functions[rebased]
                    if rebased in self.classes:
                        return self.classes[rebased]
        # unique-method-name fallback
        if attr in _AMBIGUOUS_METHOD_NAMES:
            return None
        candidates = self._methods_by_name.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def _base_name(node: ast.expr) -> str:
    return _dotted(node).split(".")[-1] if _dotted(node) else ""


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
