"""Multi-window SLO burn-rate alerting on the tick clock.

A single hard SLO threshold is either too twitchy (one bad window pages)
or too slow (a sustained slow bleed never crosses it).  The standard
answer is multi-window burn-rate alerting: track the fraction of the
error budget being consumed over a *fast* window (catches sharp
regressions quickly) and a *slow* window (suppresses blips), and alert
only when **both** burn faster than a threshold multiple of the budget.

This evaluator runs entirely on the deterministic tick clock - callers
feed it ``(good, bad)`` outcome counts per tick - so alert decisions,
and the :class:`BurnAlert` records that ride in reports, are
byte-identical across seeded runs.  Wall time never enters an alert
decision; the flow analysis registers ``BurnAlert`` as a taint sink to
keep it that way (see ``tests/flow_fixtures/bad_attribution.py``).

The fleet router treats a burning shard exactly like an SLO breach (it
can trip the breaker and trigger migration); the traffic driver
evaluates one key per tier against the tier's attainment SLO.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class BurnRateRule:
    """One fast/slow burn-rate alerting policy.

    Attributes:
        fast_window: Ticks in the fast (page-quickly) window.
        slow_window: Ticks in the slow (confirmation) window; also the
            retention bound per key.
        budget: Error budget as a bad-outcome fraction (e.g. 0.1 means
            up to 10% of windows may miss their SLO).
        threshold: Burn-rate multiple that fires the alert; both
            windows must burn at ``threshold`` times the budget rate.
    """

    fast_window: int = 6
    slow_window: int = 24
    budget: float = 0.1
    threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ReproError(
                "burn-rate windows must satisfy "
                f"0 < fast <= slow, got {self.fast_window}/"
                f"{self.slow_window}"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ReproError(
                f"burn-rate budget must be in (0, 1], got {self.budget}"
            )
        if self.threshold <= 0.0:
            raise ReproError(
                f"burn-rate threshold must be positive, "
                f"got {self.threshold}"
            )


@dataclass(frozen=True)
class BurnAlert:
    """One burn-rate alert decision (a report-visible record)."""

    key: str
    tick: int
    fast_burn: float
    slow_burn: float
    threshold: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "tick": self.tick,
            "fast_burn": round(self.fast_burn, 9),
            "slow_burn": round(self.slow_burn, 9),
            "threshold": round(self.threshold, 9),
        }


def _burn(samples: List[Tuple[int, int]], budget: float) -> float:
    """Burn rate over a sample window: bad-fraction over budget."""
    good = sum(g for g, _ in samples)
    bad = sum(b for _, b in samples)
    total = good + bad
    if total <= 0:
        return 0.0
    return (bad / total) / budget


class BurnRateEvaluator:
    """Per-key burn-rate state over bounded tick windows."""

    def __init__(self, rule: Optional[BurnRateRule] = None) -> None:
        self.rule = rule if rule is not None else BurnRateRule()
        self._lock = threading.Lock()
        self._windows: Dict[str, Deque[Tuple[int, int]]] = {}

    def observe(
        self, key: str, tick: int, good: int, bad: int
    ) -> Optional[BurnAlert]:
        """Fold one tick's outcomes for ``key``; returns an alert when
        both the fast and slow windows burn past the threshold.

        A burning key keeps returning an alert every burning tick;
        callers that want edge-triggered behaviour (the fleet breaker
        path) gate on their own state.
        """
        rule = self.rule
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = deque(maxlen=rule.slow_window)
                self._windows[key] = window
            window.append((good, bad))
            samples = list(window)
        fast = _burn(samples[-rule.fast_window:], rule.budget)
        slow = _burn(samples, rule.budget)
        if fast >= rule.threshold and slow >= rule.threshold:
            return BurnAlert(
                key=key,
                tick=tick,
                fast_burn=fast,
                slow_burn=slow,
                threshold=rule.threshold,
            )
        return None

    def burn_rates(self, key: str) -> Tuple[float, float]:
        """Current ``(fast, slow)`` burn rates for ``key`` (0 if unseen)."""
        rule = self.rule
        with self._lock:
            samples = list(self._windows.get(key, ()))
        return (
            _burn(samples[-rule.fast_window:], rule.budget),
            _burn(samples, rule.budget),
        )

    def reset(self, key: str) -> None:
        """Drop ``key``'s window (after the caller acted on the alert -
        e.g. a burn-rate failover drained the shard, so there is
        nothing left burning)."""
        with self._lock:
            self._windows.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._windows)
