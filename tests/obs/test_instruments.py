"""Unit tests for the observability instruments (tracer, metrics,
flight recorder) and the capture scope that installs them."""

import threading

import pytest

from repro.obs import (
    CONTROL,
    ROOT,
    VIRTUAL,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    capture,
    metrics,
    recorder,
    tracer,
)
from repro.runtime.trace import record_span


class TestTracerSpans:
    def test_disabled_tracer_records_nothing(self):
        trc = Tracer(enabled=False)
        with trc.span("a", "x") as span_id:
            trc.instant("b", "x")
        assert span_id == ROOT
        assert trc.events == []

    def test_nested_spans_link_parents(self):
        trc = Tracer(enabled=True)
        with trc.span("outer", "x") as outer_id:
            with trc.span("inner", "x") as inner_id:
                pass
        by_name = {e.name: e for e in trc.events}
        assert by_name["outer"].parent_id == ROOT
        assert by_name["inner"].parent_id == outer_id
        assert inner_id != outer_id

    def test_children_nest_strictly_in_ticks(self):
        trc = Tracer(enabled=True)
        with trc.span("outer", "x"):
            with trc.span("inner", "x"):
                pass
        by_name = {e.name: e for e in trc.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.ts < inner.ts
        assert inner.ts + inner.dur < outer.ts + outer.dur

    def test_instant_parented_to_open_span(self):
        trc = Tracer(enabled=True)
        with trc.span("outer", "x") as outer_id:
            trc.instant("ping", "x", tick=3)
        instant = next(e for e in trc.events if e.kind == "instant")
        assert instant.parent_id == outer_id
        assert instant.dur == 0.0
        assert instant.attr("tick") == 3

    def test_sibling_spans_share_parent(self):
        trc = Tracer(enabled=True)
        with trc.span("outer", "x") as outer_id:
            with trc.span("a", "x"):
                pass
            with trc.span("b", "x"):
                pass
        parents = {e.name: e.parent_id for e in trc.events}
        assert parents["a"] == parents["b"] == outer_id

    def test_attrs_sorted_and_readable(self):
        trc = Tracer(enabled=True)
        with trc.span("s", "x", zebra=1, alpha=2):
            pass
        event = trc.events[0]
        assert [k for k, _ in event.attrs] == ["alpha", "zebra"]
        assert event.attr("zebra") == 1
        assert event.attr("missing", 9) == 9

    def test_span_stacks_are_per_thread(self):
        trc = Tracer(enabled=True)
        seen = {}

        def worker():
            with trc.span("threaded", "x"):
                seen["parent"] = trc.events  # open span not yet closed
                seen["current"] = trc.current_span_id()

        with trc.span("main", "x"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        threaded = next(e for e in trc.events if e.name == "threaded")
        # The other thread's span must not adopt this thread's open span.
        assert threaded.parent_id == ROOT


class TestTracerVirtual:
    def spans(self, tenant=None):
        return [
            record_span(0, "big", 0, 0.0, 1.0, tenant=tenant),
            record_span(1, "gpu", 0, 1.0, 2.5, tenant=tenant),
        ]

    def test_virtual_spans_carry_tags(self):
        trc = Tracer(enabled=True)
        trc.emit_virtual_spans(self.spans("t-a"), total_s=2.5)
        events = trc.events
        assert all(e.domain == VIRTUAL for e in events)
        assert events[0].track == "t-a/big"
        assert events[0].name == "chunk0/task0"
        assert events[1].attr("pu") == "gpu"
        assert events[1].attr("tenant") == "t-a"

    def test_cursor_lays_runs_back_to_back(self):
        trc = Tracer(enabled=True)
        trc.emit_virtual_spans(self.spans(), total_s=2.5)
        trc.emit_virtual_spans(self.spans(), total_s=2.5)
        events = trc.events
        assert events[0].ts == 0.0
        assert events[2].ts == pytest.approx(2.5)  # second run shifted
        assert events[3].ts == pytest.approx(3.5)

    def test_untenanted_spans_use_run_track(self):
        trc = Tracer(enabled=True)
        trc.emit_virtual_spans(self.spans(), total_s=2.5)
        assert trc.events[0].track == "run/big"

    def test_parent_id_propagates(self):
        trc = Tracer(enabled=True)
        with trc.span("run", "runtime") as run_id:
            pass
        trc.emit_virtual_spans(self.spans(), 2.5, parent_id=run_id)
        virtual = [e for e in trc.events if e.domain == VIRTUAL]
        assert all(e.parent_id == run_id for e in virtual)


class TestMetricsRegistry:
    def test_disabled_registry_stays_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a")
        reg.gauge("b", 2.0)
        reg.observe("c", 3.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counters_accumulate(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("retry.count")
        reg.counter("retry.count", 2)
        assert reg.snapshot()["counters"]["retry.count"] == 3

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("depth", 4.0)
        reg.gauge("depth", 1.0)
        assert reg.snapshot()["gauges"]["depth"] == 1.0

    def test_histogram_summary(self):
        reg = MetricsRegistry(enabled=True)
        for value in (1.0, 2.0, 3.0, 4.0):
            reg.observe("lat", value)
        summary = reg.snapshot()["histograms"]["lat"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(2.5)

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry(enabled=True)
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name)
        assert list(reg.snapshot()["counters"]) == [
            "alpha", "mid", "zeta"
        ]


class TestFlightRecorder:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_disabled_recorder_ignores_records(self):
        rec = FlightRecorder(capacity=4, enabled=False)
        rec.record("x")
        assert len(rec) == 0
        assert rec.tail() == []

    def test_ring_keeps_only_last_n(self):
        rec = FlightRecorder(capacity=3, enabled=True)
        for index in range(10):
            rec.record("tick", index=index)
        tail = rec.tail()
        assert len(tail) == 3
        assert [entry["index"] for entry in tail] == [7, 8, 9]
        # seq keeps counting across the wrap: a total order survives.
        assert [entry["seq"] for entry in tail] == [7, 8, 9]

    def test_tail_n_limits(self):
        rec = FlightRecorder(capacity=8, enabled=True)
        for index in range(5):
            rec.record("tick", index=index)
        assert [e["index"] for e in rec.tail(2)] == [3, 4]

    def test_fields_sorted_after_kind(self):
        rec = FlightRecorder(capacity=2, enabled=True)
        rec.record("evt", zebra=1, alpha=2)
        entry = rec.tail()[0]
        assert list(entry) == ["seq", "kind", "alpha", "zebra"]


class TestCaptureScope:
    def test_globals_disabled_by_default(self):
        assert not tracer().enabled
        assert not metrics().enabled
        assert not recorder().enabled

    def test_capture_installs_and_restores(self):
        before = (tracer(), metrics(), recorder())
        with capture() as cap:
            assert tracer() is cap.tracer
            assert metrics() is cap.metrics
            assert recorder() is cap.recorder
            assert cap.tracer.enabled
            with cap.tracer.span("s", "x"):
                pass
            assert len(cap.events) == 1
        assert (tracer(), metrics(), recorder()) == before

    def test_capture_restores_on_error(self):
        before = tracer()
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert tracer() is before

    def test_capture_flight_capacity(self):
        with capture(flight_capacity=2) as cap:
            for index in range(5):
                cap.recorder.record("tick", index=index)
            assert len(cap.recorder.tail()) == 2
