"""API-quality gates: every public item documented, imports clean.

Documentation on every public item is part of the deliverable; this
meta-test keeps it true as the library grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.baselines",
    "repro.core",
    "repro.eval",
    "repro.kernels",
    "repro.runtime",
    "repro.soc",
    "repro.solver",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(
                f"{package_name}.{info.name}"
            )


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, obj


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not inspect.isclass(obj):
                    continue
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (inspect.getdoc(method) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        assert undocumented == []


class TestExports:
    def test_all_lists_resolve(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), (
                    f"{package_name}.__all__ lists missing {name!r}"
                )

    def test_version_exposed(self):
        assert repro.__version__
