"""Failure-injection and robustness tests across module boundaries."""

import threading
import time

import numpy as np
import pytest

from repro.core import Application, Chunk, Stage
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import ProfilingTable
from repro.errors import (
    PipelineError,
    ProfilingError,
    SchedulingError,
    SolverTimeoutError,
)
from repro.runtime import SpscQueue, ThreadedPipelineExecutor
from repro.soc import WorkProfile


def work():
    return WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0)


def make_app(kernels_by_stage, make_task=None):
    stages = [
        Stage(f"s{i}", work(), {"cpu": fn, "gpu": fn})
        for i, fn in enumerate(kernels_by_stage)
    ]
    return Application(
        "robust", stages,
        make_task=make_task or (lambda seed: {"x": np.zeros(4)}),
    )


class TestKernelFailures:
    def test_crash_in_middle_chunk_unwinds_whole_pipeline(self):
        def ok(task):
            task["x"] += 1

        def boom(task):
            raise RuntimeError("mid-pipeline crash")

        app = make_app([ok, boom, ok])
        executor = ThreadedPipelineExecutor(
            app,
            [Chunk(0, 1, "big"), Chunk(1, 2, "gpu"),
             Chunk(2, 3, "little")],
        )
        start = time.perf_counter()
        with pytest.raises(PipelineError) as excinfo:
            executor.run(4)
        # Fast unwinding, not a queue-timeout hang.
        assert time.perf_counter() - start < 10.0
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_crash_on_later_task_reports_after_earlier_successes(self):
        calls = {"count": 0}

        def flaky(task):
            calls["count"] += 1
            if calls["count"] == 3:
                raise ValueError("task 3 corrupt")

        app = make_app([flaky])
        with pytest.raises(PipelineError):
            ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")]).run(5)
        assert calls["count"] == 3

    def test_no_threads_leak_after_crash(self):
        def boom(task):
            raise RuntimeError("boom")

        app = make_app([boom])
        before = threading.active_count()
        with pytest.raises(PipelineError):
            ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")]).run(2)
        # Give daemon threads a beat to exit their closed queues.
        time.sleep(0.2)
        assert threading.active_count() <= before + 1


class TestQueueEdgeCases:
    def test_close_during_blocked_push_raises(self):
        # One thread owns the producer end (fill + blocked push) so the
        # queue keeps SPSC discipline under the concurrency checker.
        queue = SpscQueue(capacity=1)
        errors = []
        filled = threading.Event()

        def producer():
            queue.push("fill")
            filled.set()
            try:
                queue.push("blocked", timeout=5)
            except Exception as exc:  # noqa: BLE001 - recording type
                errors.append(type(exc).__name__)

        thread = threading.Thread(target=producer)
        thread.start()
        filled.wait(timeout=5)
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert errors == ["QueueClosedError"]

    def test_interleaved_try_ops_consistent(self):
        queue = SpscQueue(capacity=2)
        assert queue.try_push(1)
        assert queue.try_push(2)
        assert not queue.try_push(3)
        assert queue.try_pop() == 1
        assert queue.try_push(3)
        assert queue.try_pop() == 2
        assert queue.try_pop() == 3


class TestSolverBudget:
    def test_optimizer_surfaces_solver_timeout(self):
        app = Application(
            "big",
            [Stage.model_only(f"s{i}", work()) for i in range(10)],
        )
        entries = {
            (f"s{i}", pu): 1.0 + i * 0.1
            for i in range(10)
            for pu in ("a", "b", "c", "d")
        }
        table = ProfilingTable(
            application="big", platform="t", mode="interference",
            entries=entries, stage_names=tuple(f"s{i}" for i in range(10)),
            pu_classes=("a", "b", "c", "d"),
        )
        optimizer = BTOptimizer(app, table)
        # Starve the search: patch the Solver budget through the module.
        import repro.core.optimizer as opt_module

        original = opt_module.Solver

        class TinySolver(original):
            def __init__(self, model, max_decisions=None, **kwargs):
                super().__init__(model, max_decisions=5, **kwargs)

        opt_module.Solver = TinySolver
        try:
            with pytest.raises(SolverTimeoutError):
                optimizer.optimize_utilization()
        finally:
            opt_module.Solver = original


class TestProfilerTableMisuse:
    def test_optimizer_rejects_stage_mismatch(self):
        app = make_app([lambda task: None])
        table = ProfilingTable(
            application="other", platform="t", mode="interference",
            entries={("x", "big"): 1.0}, stage_names=("x", "y"),
            pu_classes=("big",),
        )
        with pytest.raises(SchedulingError):
            BTOptimizer(app, table)

    def test_table_row_for_unknown_stage(self):
        table = ProfilingTable(
            application="a", platform="t", mode="isolated",
            entries={("s", "big"): 1.0}, stage_names=("s",),
            pu_classes=("big",),
        )
        with pytest.raises(ProfilingError):
            table.latency("nope", "big")


class TestDegenerateInputs:
    def test_single_stage_single_pu_pipeline(self):
        app = make_app([lambda task: None])
        result = ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")]).run(1)
        assert result.n_tasks == 1

    def test_many_tasks_through_tiny_pipeline(self):
        counter = {"n": 0}

        def count(task):
            counter["n"] += 1

        app = make_app([count])
        ThreadedPipelineExecutor(
            app, [Chunk(0, 1, "big")], num_task_objects=1
        ).run(50)
        assert counter["n"] == 50
