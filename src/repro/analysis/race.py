"""``python -m repro race``: drive the dynamic concurrency checker.

Two phases:

* **clean** - run a real threaded pipeline (dispatcher threads, SPSC
  queues, watchdog, fault-injector locks) with the checker force-
  enabled.  A healthy runtime must report *zero* violations.
* **selftest** (``--selftest``) - deliberately break each invariant
  (a second producer on an SPSC queue, a use-after-release read on a
  released buffer, two aliasing buffers in one TaskObject, a lock-order
  inversion) and verify the checker detects every one.  This proves the
  instrumentation is live, not silently disabled.

The exit code is non-zero when the clean phase reports anything or the
selftest misses a seeded violation; the structured JSON report mirrors
the lint report shape so CI consumes both identically.

This module is imported lazily by the CLI: it pulls in
:mod:`repro.runtime`, which itself imports the checker hooks, so a
module-level import from ``repro.analysis.__init__`` would be circular.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.analysis import lock_order, runtime_checks
from repro.analysis.report import render_race_json
from repro.analysis.runtime_checks import (
    BUFFER_ALIAS,
    LOCK_ORDER,
    SPSC_PRODUCER,
    USE_AFTER_RELEASE,
    ViolationLog,
)
from repro.core.stage import Application, Chunk, Stage
from repro.errors import QueueClosedError
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.pipeline import ThreadedPipelineExecutor
from repro.runtime.spsc import SpscQueue
from repro.runtime.task_object import TaskObject
from repro.runtime.usm import UsmBuffer
from repro.runtime.watchdog import WatchdogConfig
from repro.soc.workprofile import WorkProfile


def build_check_app(n_stages: int = 4) -> Application:
    """A tiny self-validating counting pipeline for checker scenarios.

    Each stage bumps a per-task counter; the trace proves ordering and
    coverage without profiling, so the race runner stays fast and fully
    deterministic.
    """
    def stage_kernel(index: int):
        def kernel(task) -> None:
            trace = task["trace"]
            trace[index] = trace[index - 1] + 1 if index > 0 else 1
        return kernel

    stages = [
        Stage(f"s{i}",
              WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0),
              {"cpu": stage_kernel(i), "gpu": stage_kernel(i)})
        for i in range(n_stages)
    ]

    def make_task(seed: int) -> Dict[str, np.ndarray]:
        return {"trace": np.zeros(n_stages, dtype=np.int64)}

    def validate(task) -> None:
        expected = np.arange(1, n_stages + 1)
        if not np.array_equal(np.asarray(task["trace"]), expected):
            raise ValueError(f"bad trace {task['trace']}")

    return Application("race-check", stages, make_task=make_task,
                       validate_task=validate)


def run_clean_phase(tasks: int = 8,
                    stages: int = 4) -> Tuple[ViolationLog, Dict]:
    """Run the instrumented pipeline; a healthy runtime reports nothing.

    The schedule splits the stages across two PU classes so dispatcher
    threads, inter-chunk queues, heartbeat locks, the watchdog lock and
    the fault-log lock are all genuinely exercised concurrently.
    """
    application = build_check_app(stages)
    split = max(1, stages // 2)
    chunks = [Chunk(0, split, "big"), Chunk(split, stages, "gpu")]
    with runtime_checks.collecting() as log:
        executor = ThreadedPipelineExecutor(
            application, chunks,
            fault_injector=FaultInjector(FaultPlan()),
            watchdog=WatchdogConfig(stall_timeout_s=10.0,
                                    chunk_deadline_s=5.0),
        )
        result = executor.run(tasks, validate=True)
    summary = {"tasks": result.n_tasks, "completed": result.completed,
               "chunks": len(chunks)}
    return log, summary


def run_selftest_phase() -> Tuple[ViolationLog, List[str]]:
    """Seed one violation of each kind; return (log, kinds NOT seen)."""
    with runtime_checks.collecting() as log:
        _seed_second_producer()
        _seed_use_after_release()
        _seed_buffer_alias()
        _seed_lock_order_inversion()
    expected = {SPSC_PRODUCER, USE_AFTER_RELEASE, BUFFER_ALIAS,
                LOCK_ORDER}
    missing = sorted(expected - set(log.counts))
    return log, missing


def _seed_second_producer() -> None:
    """Push to one SPSC queue from two different threads."""
    queue = SpscQueue(capacity=4, name="selftest-q")
    queue.push("from-main")

    def second_producer() -> None:
        try:
            queue.push("from-intruder")
        except QueueClosedError:  # pragma: no cover - defensive
            pass

    intruder = threading.Thread(  # bt-lint: disable=UNSUPERVISED-THREAD
        target=second_producer, name="intruder",
    )
    intruder.start()
    intruder.join(timeout=5)


def _seed_use_after_release() -> None:
    """Read a buffer after its TaskObject retired it."""
    task = TaskObject(0)
    task.allocate("scratch", (4,), np.float32)
    task.release()
    task.buffer("scratch")  # use-after-release on the task...
    buffer = UsmBuffer("loose", (2,), np.float32)
    buffer.release()
    buffer.host_view()  # ...and directly on a released buffer


def _seed_buffer_alias() -> None:
    """Wrap the same storage as two buffers of one TaskObject."""
    storage = np.zeros(8, dtype=np.float32)
    task = TaskObject(0)
    task.wrap("left", storage)
    task.wrap("right", storage[2:6])  # overlapping view: aliasing


#: Fresh lock names per seeding so repeated selftests in one process
#: re-trigger the (per lock pair, deduplicated) cycle report.
_SELFTEST_LOCKS = itertools.count()


def _seed_lock_order_inversion() -> None:
    """Acquire two tracked locks in opposite orders on two threads."""
    generation = next(_SELFTEST_LOCKS)
    lock_a = lock_order.TrackedLock(f"selftest-a{generation}")
    lock_b = lock_order.TrackedLock(f"selftest-b{generation}")
    with lock_a:
        with lock_b:
            pass

    def inverted() -> None:
        with lock_b:
            with lock_a:
                pass

    worker = threading.Thread(  # bt-lint: disable=UNSUPERVISED-THREAD
        target=inverted, name="inverter",
    )
    worker.start()
    worker.join(timeout=5)


def run_race(tasks: int = 8, stages: int = 4,
             selftest: bool = False) -> Tuple[Dict[str, Any], int]:
    """Full race-checker run; returns (structured report, exit code)."""
    phases: Dict[str, ViolationLog] = {}
    extra: Dict[str, Any] = {}
    clean_log, summary = run_clean_phase(tasks=tasks, stages=stages)
    phases["clean"] = clean_log
    extra["clean_run"] = summary
    exit_code = 0
    if len(clean_log):
        exit_code = 1
    if selftest:
        selftest_log, missing = run_selftest_phase()
        phases["selftest"] = selftest_log
        extra["selftest_ok"] = not missing
        extra["selftest_missing"] = missing
        if missing:
            exit_code = 1
    extra["verdict"] = "ok" if exit_code == 0 else "violations"
    return render_race_json(phases, extra), exit_code
