"""Bounded flight recorder: the last N events before a crash.

Postmortems after a stall or kernel fault need context - what the
watchdog saw, which retries fired, which tenants were admitted - but an
unbounded event log would defeat the runtime's own memory discipline.
The flight recorder is a fixed-capacity ring buffer: fault and watchdog
paths (and any other subsystem) :meth:`~FlightRecorder.record` into it,
and the crash paths dump its :meth:`~FlightRecorder.tail` into
``FaultReport.flight_tail`` and ``StallError.flight_tail`` so the last
moments before the failure travel with the diagnostic.

Entries hold only deterministic, JSON-serializable fields (no wall
time); the monotonically increasing ``seq`` gives a total order even
after the ring wraps.  Disabled by default like the other instruments.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Ring buffer of the last ``capacity`` recorded events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; the oldest entry falls off at capacity."""
        if not self.enabled:
            return
        with self._lock:
            entry = {"seq": self._seq, "kind": kind}
            for key in sorted(fields):
                entry[key] = fields[key]
            self._seq += 1
            self._ring.append(entry)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events (all buffered ones if None)."""
        with self._lock:
            entries = list(self._ring)
        if n is not None:
            entries = entries[-n:]
        return [dict(e) for e in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_GLOBAL = FlightRecorder(enabled=False)


def recorder() -> FlightRecorder:
    """The process-global flight recorder; disabled unless capturing."""
    return _GLOBAL


def set_recorder(instance: FlightRecorder) -> FlightRecorder:
    """Install ``instance`` as the global recorder; returns the old one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = instance
    return previous
