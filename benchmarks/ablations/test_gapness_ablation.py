"""Ablation: the utilization (gapness) filter - what level 1 buys.

Compares the full BetterTogether flow against latency-only optimization
over the *same* interference-aware table (the paper's Fig. 5a vs 5b),
measured on the deployed (autotuned) schedule AND on prediction quality.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_alexnet_sparse
from repro.baselines import latency_only_candidates
from repro.core.autotuner import Autotuner
from repro.core.framework import BetterTogether
from repro.eval.metrics import pearson_correlation
from repro.soc import get_platform


@pytest.fixture(scope="module")
def setting():
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    framework = BetterTogether(platform, repetitions=10, k=20,
                               eval_tasks=20)
    table = framework.profile(application)
    return platform, application, framework, table


def test_gapness_filter_improves_prediction_fidelity(benchmark, setting):
    platform, application, framework, table = setting

    def ablate():
        filtered = framework.optimize(application, table)
        unfiltered = latency_only_candidates(
            application,
            table.restricted(platform.schedulable_classes()),
            k=20,
        )
        tuner = Autotuner(application, platform, eval_tasks=20)
        return (
            tuner.tune(filtered),
            tuner.tune(unfiltered),
        )

    with_filter, without_filter = run_once(benchmark, ablate)

    def correlation(result):
        return pearson_correlation(
            [e.predicted_latency_s for e in result.entries],
            [e.measured_latency_s for e in result.entries],
        )

    r_filtered = correlation(with_filter)
    r_unfiltered = correlation(without_filter)
    print(f"\nprediction correlation: gapness-filtered {r_filtered:.3f} "
          f"vs latency-only {r_unfiltered:.3f}")
    # The filter preserves the profiling conditions -> predictions hold.
    assert r_filtered > r_unfiltered

    # And the deployed schedule is no slower for it.
    assert (
        with_filter.measured_best.measured_latency_s
        <= without_filter.measured_best.measured_latency_s * 1.1
    )
