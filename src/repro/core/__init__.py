"""BetterTogether core: abstractions, profiler, optimizer, autotuner,
and the end-to-end framework driver (paper section 3)."""

from repro.core.autotuner import Autotuner, AutotuneEntry, AutotuneResult
from repro.core.deployment import (
    RateConstrainedChoice,
    RateTrial,
    select_for_rate,
)
from repro.core.framework import BetterTogether, DeploymentPlan
from repro.core.optimizer import (
    BTOptimizer,
    OptimizationResult,
    ScheduleCandidate,
)
from repro.core.plan_cache import (
    CachedPlan,
    PlanCache,
    with_packing_candidates,
)
from repro.core.profiler import (
    INTERFERENCE,
    ISOLATED,
    BTProfiler,
    ProfilingTable,
    interference_ratios,
)
from repro.core.schedule import (
    Schedule,
    enumerate_schedules,
    validate_schedule,
)
from repro.core.session import CampaignSession, SessionReport
from repro.core.stage import Application, Chunk, Stage, TaskGraph

__all__ = [
    "Application",
    "Autotuner",
    "AutotuneEntry",
    "AutotuneResult",
    "BTOptimizer",
    "BTProfiler",
    "BetterTogether",
    "CachedPlan",
    "CampaignSession",
    "Chunk",
    "DeploymentPlan",
    "INTERFERENCE",
    "ISOLATED",
    "OptimizationResult",
    "PlanCache",
    "ProfilingTable",
    "RateConstrainedChoice",
    "RateTrial",
    "Schedule",
    "ScheduleCandidate",
    "SessionReport",
    "Stage",
    "TaskGraph",
    "enumerate_schedules",
    "interference_ratios",
    "select_for_rate",
    "validate_schedule",
    "with_packing_candidates",
]
