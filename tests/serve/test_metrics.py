"""Serving metrics: percentiles, per-tenant summaries, report shape."""

import numpy as np
import pytest

from repro.errors import ReproError, ServeError
from repro.serve import (
    COMPLETED,
    REJECTED,
    RUNNING,
    ServeReport,
    TenantMetrics,
    TenantRecord,
    TenantSpec,
    WindowResult,
    attainment,
    fleet_p95,
    merge_latencies,
    percentile,
)


class TestPercentile:
    def test_empty_samples_rejected(self):
        with pytest.raises(ServeError, match="empty"):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ServeError, match="out of"):
            percentile([1.0], 101.0)

    def test_negative_q_rejected(self):
        with pytest.raises(ServeError, match="out of"):
            percentile([1.0], -0.5)

    def test_single_sample(self):
        assert percentile([3.5], 95.0) == 3.5

    def test_q_zero_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_q_hundred_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 100.0) == 5.0

    def test_duplicate_samples_are_flat(self):
        # A degenerate distribution: every quantile is the same value,
        # with no interpolation drift between equal neighbours.
        samples = [2.0] * 7
        for q in (0.0, 12.5, 50.0, 95.0, 100.0):
            assert percentile(samples, q) == 2.0

    def test_two_sample_interpolation(self):
        # With two samples the rank is q/100 exactly, so the result is
        # a straight blend of min and max.
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([10.0, 0.0], 95.0) == pytest.approx(9.5)

    def test_unsorted_input_handled(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0

    @pytest.mark.parametrize("q", [0.0, 25.0, 50.0, 95.0, 100.0])
    def test_matches_numpy_linear_interpolation(self, q):
        rng = np.random.default_rng(123)
        samples = list(rng.random(101))
        assert percentile(samples, q) == pytest.approx(
            float(np.percentile(samples, q))
        )


class TestAttainment:
    def test_empty_samples_raise_structured_error(self):
        with pytest.raises(ServeError, match="empty"):
            attainment([], 1.0)
        # Catchable at the API boundary like every library error.
        with pytest.raises(ReproError):
            attainment([], 1.0)

    def test_non_positive_slo_rejected(self):
        with pytest.raises(ServeError, match="positive"):
            attainment([1.0], 0.0)
        with pytest.raises(ServeError, match="positive"):
            attainment([1.0], -2.0)

    def test_all_attaining(self):
        assert attainment([0.1, 0.2, 0.3], 0.5) == 1.0

    def test_all_breaching(self):
        assert attainment([0.6, 0.7, 0.8], 0.5) == 0.0

    def test_exact_boundary_counts_as_met(self):
        # "p95 <= 40 ms" includes 40 ms itself.
        assert attainment([0.5], 0.5) == 1.0
        assert attainment([0.5, 1.0], 0.5) == 0.5

    def test_mixed_fraction(self):
        samples = [0.1, 0.2, 0.3, 0.9]
        assert attainment(samples, 0.35) == pytest.approx(0.75)


def record_with_history(app, name="t", latencies=(), window_tasks=10,
                        status=COMPLETED):
    record = TenantRecord(
        spec=TenantSpec(name=name, application=app,
                        window_tasks=window_tasks),
        status=status,
    )
    for index, latency in enumerate(latencies):
        record.history.append(WindowResult(
            window_index=index,
            schedule=None,
            measured_latency_s=latency,
            external_busy_classes=[],
        ))
    record.windows_done = len(record.history)
    return record


class TestTenantMetrics:
    def test_unserved_tenant_zeroes(self, app):
        metrics = TenantMetrics.from_record(record_with_history(app))
        assert metrics.windows_served == 0
        assert metrics.p95_latency_s == 0.0

    def test_summary_over_history(self, app):
        record = record_with_history(
            app, latencies=[0.010, 0.010, 0.030]
        )
        metrics = TenantMetrics.from_record(record)
        assert metrics.windows_served == 3
        # 3 windows x 10 tasks: p50 sits in the fast bulk, max on the
        # slow window.
        assert metrics.p50_latency_s == pytest.approx(0.010)
        assert metrics.max_latency_s == pytest.approx(0.030)
        assert (metrics.mean_latency_s
                == pytest.approx((0.010 + 0.010 + 0.030) / 3))

    def test_to_dict_rounds(self, app):
        record = record_with_history(app, latencies=[1 / 3])
        payload = TenantMetrics.from_record(record).to_dict()
        assert payload["p95_latency_s"] == round(1 / 3, 9)

    def test_to_dict_renders_na_for_zero_window_tenants(self, app):
        # A rejected (or still-pending) tenant served nothing: the
        # report must say "n/a", not 0.0 ("infinitely fast").
        record = record_with_history(app, status=REJECTED)
        payload = TenantMetrics.from_record(record).to_dict()
        assert payload["windows_served"] == 0
        for key in ("mean_latency_s", "p50_latency_s",
                    "p95_latency_s", "max_latency_s"):
            assert payload[key] == "n/a"

    def test_served_tenant_renders_numbers(self, app):
        record = record_with_history(app, latencies=[0.020])
        payload = TenantMetrics.from_record(record).to_dict()
        assert all(
            isinstance(payload[key], float)
            for key in ("mean_latency_s", "p50_latency_s",
                        "p95_latency_s", "max_latency_s")
        )

    def test_percentile_error_is_a_structured_repro_error(self):
        # Callers that guard whole report builds catch the base class.
        with pytest.raises(ReproError):
            percentile([], 95.0)


class TestReportShape:
    def test_tenants_serialize_sorted(self, app):
        metrics = {
            name: TenantMetrics.from_record(
                record_with_history(app, name=name)
            )
            for name in ("zeta", "alpha", "mid")
        }
        report = ServeReport(
            platform="pixel7a", seed=7, ticks=3,
            rescheduling_enabled=True, tenants=metrics,
            timeline=[], plan_cache={},
        )
        assert list(report.to_dict()["tenants"]) == [
            "alpha", "mid", "zeta"
        ]

    def test_fleet_p95_ignores_unserved(self, app):
        served = TenantMetrics.from_record(
            record_with_history(app, latencies=[0.020])
        )
        unserved = TenantMetrics.from_record(record_with_history(app))
        assert fleet_p95({"a": served, "b": unserved}) == pytest.approx(
            0.020
        )
        assert fleet_p95({"b": unserved}) == 0.0

    def test_merge_latencies_weights_by_tasks(self, app):
        records = [
            record_with_history(app, latencies=[0.01], window_tasks=4),
            record_with_history(app, latencies=[0.02], window_tasks=2),
        ]
        merged = merge_latencies(records)
        assert sorted(merged) == [0.01] * 4 + [0.02] * 2
