"""Tests for the stereo-depth extension application and its kernels."""

import numpy as np
import pytest

from repro.apps import build_stereo_application, synthetic_stereo_pair
from repro.core import BetterTogether, Chunk
from repro.errors import KernelError
from repro.kernels.stereo import (
    _popcount32,
    aggregate_cpu,
    aggregate_gpu,
    census_cpu,
    census_gpu,
    cost_volume_cpu,
    median3x3_cpu,
    median3x3_gpu,
    rectify_cpu,
    wta_cpu,
    wta_gpu,
)
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import get_platform

H, W, D = 48, 96, 16


@pytest.fixture(scope="module")
def app():
    return build_stereo_application(h=H, w=W, max_disparity=D)


def run_and_capture(app, chunks, n=1):
    captured = []

    def cap(task, index):
        captured.append({
            "cleaned": np.asarray(task["cleaned"]).copy(),
            "truth": np.asarray(task["truth"]).copy(),
        })

    ThreadedPipelineExecutor(app, chunks).run(
        n, on_complete=cap, validate=True
    )
    return captured


class TestSyntheticPair:
    def test_deterministic(self):
        a = synthetic_stereo_pair(1, H, W, D)
        b = synthetic_stereo_pair(1, H, W, D)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_truth_has_two_layers(self):
        _, _, truth = synthetic_stereo_pair(0, H, W, D)
        assert set(np.unique(truth)) == {D // 4, D // 2}

    def test_correspondence_holds(self):
        """left[r, c] equals right[r, c - d] away from the box edge."""
        left, right, truth = synthetic_stereo_pair(2, H, W, D)
        r, c = 5, W - 10  # background region
        d = int(truth[r, c])
        assert left[r, c] == pytest.approx(right[r, c - d])


class TestKernels:
    def test_popcount(self):
        values = np.array([0, 1, 0xFF, 0xFFFFFFFF], dtype=np.uint32)
        np.testing.assert_array_equal(
            _popcount32(values), [0, 1, 8, 32]
        )

    def test_census_cpu_gpu_agree(self):
        left, right, _ = synthetic_stereo_pair(3, H, W, D)
        outs = []
        for fn in (census_cpu, census_gpu):
            lo = np.zeros((H, W), dtype=np.uint32)
            ro = np.zeros((H, W), dtype=np.uint32)
            fn(left, right, lo, ro)
            outs.append((lo, ro))
        np.testing.assert_array_equal(outs[0][0], outs[1][0])
        np.testing.assert_array_equal(outs[0][1], outs[1][1])

    def test_aggregate_cpu_gpu_agree(self):
        rng = np.random.default_rng(4)
        cost = rng.integers(0, 24, size=(D, H, W)).astype(np.uint8)
        a = np.zeros((D, H, W), dtype=np.float32)
        b = np.zeros((D, H, W), dtype=np.float32)
        aggregate_cpu(cost, a)
        aggregate_gpu(cost, b)
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_aggregate_preserves_mean(self):
        cost = np.full((2, H, W), 7, dtype=np.uint8)
        out = np.zeros((2, H, W), dtype=np.float32)
        aggregate_cpu(cost, out)
        np.testing.assert_allclose(out, 7.0, rtol=1e-5)

    def test_wta_cpu_gpu_agree(self):
        rng = np.random.default_rng(5)
        aggregated = rng.random((D, H, W)).astype(np.float32)
        a = np.zeros((H, W), dtype=np.int32)
        b = np.zeros((H, W), dtype=np.int32)
        wta_cpu(aggregated, a)
        wta_gpu(aggregated, b)
        np.testing.assert_array_equal(a, b)

    def test_wta_picks_minimum(self):
        aggregated = np.ones((4, 2, 2), dtype=np.float32)
        aggregated[2, 0, 0] = 0.0
        disparity = np.zeros((2, 2), dtype=np.int32)
        wta_cpu(aggregated, disparity)
        assert disparity[0, 0] == 2

    def test_median_cpu_gpu_agree(self):
        rng = np.random.default_rng(6)
        disparity = rng.integers(0, D, size=(H, W)).astype(np.int32)
        a = np.zeros((H, W), dtype=np.int32)
        b = np.zeros((H, W), dtype=np.int32)
        median3x3_cpu(disparity, a)
        median3x3_gpu(disparity, b)
        np.testing.assert_array_equal(a, b)

    def test_median_removes_speckle(self):
        disparity = np.full((9, 9), 4, dtype=np.int32)
        disparity[4, 4] = 15  # single outlier
        cleaned = np.zeros_like(disparity)
        median3x3_cpu(disparity, cleaned)
        assert cleaned[4, 4] == 4

    def test_rectify_identity_when_no_shear(self):
        left, right, _ = synthetic_stereo_pair(7, H, W, D)
        lo = np.zeros_like(left)
        ro = np.zeros_like(right)
        rectify_cpu(left, right, lo, ro, shear=0.0)
        np.testing.assert_allclose(lo, left, rtol=1e-6)

    def test_cost_volume_zero_at_truth(self):
        """At the true disparity the census codes match (cost ~ 0) for
        background pixels away from edges."""
        left, right, truth = synthetic_stereo_pair(8, H, W, D)
        lc = np.zeros((H, W), dtype=np.uint32)
        rc = np.zeros((H, W), dtype=np.uint32)
        census_cpu(left, right, lc, rc)
        cost = np.zeros((D, H, W), dtype=np.uint8)
        cost_volume_cpu(lc, rc, cost, D)
        r, c = 5, W - 10
        d = int(truth[r, c])
        assert cost[d, r, c] <= cost[:, r, c].min() + 2

    def test_shape_validation(self):
        with pytest.raises(KernelError):
            wta_cpu(np.zeros((4, 4, 4), dtype=np.float32),
                    np.zeros((3, 4), dtype=np.int32))
        with pytest.raises(KernelError):
            cost_volume_cpu(
                np.zeros((4, 4), dtype=np.uint32),
                np.zeros((4, 4), dtype=np.uint32),
                np.zeros((2, 3, 4), dtype=np.uint8), 4,
            )


class TestApplication:
    def test_six_stages(self, app):
        assert app.num_stages == 6

    def test_recovers_ground_truth(self, app):
        captured = run_and_capture(app, [Chunk(0, 6, "big")])
        truth = captured[0]["truth"]
        cleaned = captured[0]["cleaned"]
        valid = np.zeros_like(truth, dtype=bool)
        valid[:, D:] = True
        accuracy = float(
            (np.abs(cleaned - truth) <= 1)[valid].mean()
        )
        assert accuracy > 0.8

    def test_schedule_invariance(self, app):
        a = run_and_capture(app, [Chunk(0, 6, "big")])
        b = run_and_capture(
            app, [Chunk(0, 2, "little"), Chunk(2, 4, "gpu"),
                  Chunk(4, 6, "medium")]
        )
        np.testing.assert_array_equal(a[0]["cleaned"], b[0]["cleaned"])

    def test_framework_end_to_end(self, app):
        platform = get_platform("pixel7a")
        plan = BetterTogether(platform, repetitions=3, k=6,
                              eval_tasks=8).run(app)
        assert plan.schedule.num_stages == 6
        assert plan.measured_latency_s > 0

    def test_rejects_tiny_frames(self):
        with pytest.raises(KernelError):
            build_stereo_application(h=8, w=16, max_disparity=16)
