"""Tests for the DES arrival process (sensor-rate analysis)."""

import pytest

from repro.apps import build_octree_application
from repro.core import Chunk
from repro.errors import PipelineError
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU


@pytest.fixture(scope="module")
def executor():
    platform = get_platform("jetson_orin_nano")
    app = build_octree_application(n_points=20_000)
    return SimulatedPipelineExecutor(
        app, [Chunk(0, 4, GPU), Chunk(4, 7, BIG)], platform
    )


class TestArrivalProcess:
    def test_default_is_backlogged(self, executor):
        result = executor.run(10)
        assert result.arrival_times_s == [0.0] * 10

    def test_arrivals_spaced_by_period(self, executor):
        result = executor.run(10, arrival_period_s=0.005)
        assert result.arrival_times_s == pytest.approx(
            [0.005 * t for t in range(10)]
        )

    def test_completion_never_before_arrival(self, executor):
        result = executor.run(12, arrival_period_s=0.002)
        for completion, arrival in zip(result.completion_times_s,
                                       result.arrival_times_s):
            assert completion > arrival

    def test_slow_arrivals_give_flat_single_task_latency(self, executor):
        """Well below saturation, every task sees an empty pipeline:
        end-to-end latency equals the single-task latency."""
        single = executor.run(1).completion_times_s[0]
        result = executor.run(10, arrival_period_s=single * 5)
        latencies = result.end_to_end_latencies_s()
        for latency in latencies:
            assert latency == pytest.approx(single, rel=0.05)
        assert result.keeps_up_with_arrivals()

    def test_overdriven_arrivals_build_backlog(self, executor):
        steady = executor.run(20).steady_interval_s
        result = executor.run(20, arrival_period_s=steady * 0.5)
        latencies = result.end_to_end_latencies_s()
        # Tail grows: the queue diverges.
        assert latencies[-1] > 2 * latencies[0]
        assert not result.keeps_up_with_arrivals()

    def test_at_rate_arrivals_keep_up(self, executor):
        steady = executor.run(20).steady_interval_s
        result = executor.run(20, arrival_period_s=steady * 1.3)
        assert result.keeps_up_with_arrivals()

    def test_throughput_limited_by_arrivals_when_slow(self, executor):
        period = 0.01
        result = executor.run(10, arrival_period_s=period)
        # Completions track arrivals, one per period.
        gaps = [
            b - a for a, b in zip(result.completion_times_s,
                                  result.completion_times_s[1:])
        ]
        for gap in gaps:
            assert gap == pytest.approx(period, rel=0.1)

    def test_negative_period_rejected(self, executor):
        with pytest.raises(PipelineError):
            executor.run(5, arrival_period_s=-1.0)

    def test_zero_period_equals_backlog(self, executor):
        backlog = executor.run(8)
        zero = executor.run(8, arrival_period_s=0.0)
        assert backlog.completion_times_s == zero.completion_times_s

    def test_keeps_up_trivially_with_few_tasks(self, executor):
        result = executor.run(2, arrival_period_s=1e-6)
        assert result.keeps_up_with_arrivals()
