"""Acceptance tests for the unified observability layer.

The bar from the issue:

* a seeded serve soak, run twice under capture, exports byte-identical
  Chrome/Perfetto traces containing correlated spans from at least four
  layers (profiler, solver, runtime, serve) with resolvable parent
  links and a metrics snapshot;
* a forced stall produces a ``FaultReport`` (and ``StallError``)
  carrying the flight-recorder tail.
"""

import json

import numpy as np
import pytest

from repro.errors import StallError
from repro.obs import capture, chrome_trace
from repro.core import Application, Chunk, Stage
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    SlowdownSpec,
    ThreadedPipelineExecutor,
    WatchdogConfig,
)
from repro.serve import SoakScenario, build_soak_server
from repro.soc import WorkProfile

SCENARIO = SoakScenario(windows=8)


def run_traced_soak():
    with capture() as cap:
        server = build_soak_server(SCENARIO, reschedule=True)
        server.run(timeout_s=120.0)
        return cap.events, cap.metrics.snapshot()


@pytest.fixture(scope="module")
def soak_trace():
    events, snapshot = run_traced_soak()
    return events, snapshot


class TestSoakTrace:
    def test_spans_from_at_least_four_layers(self, soak_trace):
        events, _ = soak_trace
        categories = {e.category for e in events}
        assert {"profiler", "solver", "runtime", "serve"} <= categories

    def test_every_parent_link_resolves(self, soak_trace):
        events, _ = soak_trace
        ids = {e.event_id for e in events}
        unresolved = [e for e in events
                      if e.parent_id != 0 and e.parent_id not in ids]
        assert unresolved == []

    def test_layers_are_correlated_through_parents(self, soak_trace):
        # A serve window's tick span must (transitively) parent runtime
        # spans: the cross-layer correlation the tracer exists for.
        events, _ = soak_trace
        by_id = {e.event_id: e for e in events}

        def ancestors(event):
            seen = set()
            while event.parent_id != 0 and event.parent_id in by_id:
                event = by_id[event.parent_id]
                seen.add(event.category)
            return seen

        runtime_spans = [e for e in events if e.category == "runtime"]
        assert any("serve" in ancestors(e) for e in runtime_spans)
        solver_spans = [e for e in events if e.category == "solver"]
        assert any("plan_cache" in ancestors(e) for e in solver_spans)

    def test_metrics_snapshot_covers_the_layers(self, soak_trace):
        _, snapshot = soak_trace
        counters = snapshot["counters"]
        assert counters["profiler.cells"] > 0
        assert counters["solver.invocations"] > 0
        assert counters["sim.runs"] > 0
        assert counters["admission.admits"] > 0
        assert counters["admission.rejects"] > 0
        assert "serve.window_latency_s" in snapshot["histograms"]

    def test_exported_trace_is_byte_identical_across_runs(self):
        first_events, first_snapshot = run_traced_soak()
        second_events, second_snapshot = run_traced_soak()
        first = json.dumps(chrome_trace(first_events, first_snapshot),
                           sort_keys=True)
        second = json.dumps(chrome_trace(second_events, second_snapshot),
                            sort_keys=True)
        assert first == second

    def test_tenant_tracks_present(self, soak_trace):
        events, _ = soak_trace
        tenants = {e.attr("tenant") for e in events
                   if e.domain == "virtual"}
        assert len(tenants - {None}) >= 2


def make_stall_app(n_stages=3):
    def stage_kernel(index):
        def kernel(task):
            task["trace"][index] = 1
        return kernel

    work = WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0)
    stages = [
        Stage(f"s{i}", work,
              {"cpu": stage_kernel(i), "gpu": stage_kernel(i)})
        for i in range(n_stages)
    ]
    return Application(
        "stall", stages,
        make_task=lambda seed: {"trace": np.zeros(n_stages,
                                                  dtype=np.int64)},
    )


class TestFlightRecorderOnStall:
    CHUNKS = [Chunk(0, 1, "cpu"), Chunk(1, 3, "gpu")]

    def blocked_injector(self):
        return FaultInjector(FaultPlan(slowdowns=[
            SlowdownSpec(task_id=1, stage_index=1, delay_s=60.0,
                         pu_class="gpu"),
        ]))

    def test_fault_report_carries_flight_tail(self):
        app = make_stall_app()
        with capture() as cap:
            injector = self.blocked_injector()
            executor = ThreadedPipelineExecutor(
                app, self.CHUNKS, fault_injector=injector,
                isolate_failures=True,
                watchdog=WatchdogConfig(stall_timeout_s=0.2),
            )
            result = executor.run(4)
            report = injector.report(result.failures)
        assert report.flight_tail  # the recorder's last moments
        kinds = {entry["kind"] for entry in report.flight_tail}
        assert "stall" in kinds
        # The tail survives serialization with the report.
        assert report.to_dict()["flight_tail"] == [
            dict(entry) for entry in report.flight_tail
        ]

    def test_stall_error_carries_flight_tail(self):
        app = make_stall_app()
        with capture() as cap:
            executor = ThreadedPipelineExecutor(
                app, self.CHUNKS,
                fault_injector=self.blocked_injector(),
                isolate_failures=False,
                watchdog=WatchdogConfig(stall_timeout_s=0.2),
            )
            with pytest.raises(Exception) as excinfo:
                executor.run(4)
        cause = excinfo.value.__cause__
        assert isinstance(cause, StallError)
        assert cause.flight_tail
        assert "stall" in cause.diagnostic()

    def test_no_capture_means_empty_tail(self):
        app = make_stall_app()
        injector = self.blocked_injector()
        executor = ThreadedPipelineExecutor(
            app, self.CHUNKS, fault_injector=injector,
            isolate_failures=True,
            watchdog=WatchdogConfig(stall_timeout_s=0.2),
        )
        result = executor.run(4)
        report = injector.report(result.failures)
        assert report.flight_tail == ()
