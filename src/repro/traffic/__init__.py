"""repro.traffic - open-loop workload generation, trace replay, and
overload-driven SLO evaluation.

The scripted soaks (serve, fleet) submit exactly what the system can
absorb; production fleets do not get that courtesy.  This package
offers load the fleet cannot refuse to receive: a seeded open-loop
generator (tenant churn, tiered priority mix, heavy-tailed sessions,
diurnal + burst rate shapes) whose arrival stream is a pure function
of (spec, seed); a checksummed trace format so a workload can be
frozen and replayed byte-identically; an open-loop driver that feeds
either into :class:`~repro.fleet.router.FleetRouter`'s step mode tick
by tick; and an SLO evaluation layer that turns the served windows
into per-tier attainment, goodput-vs-offered-load, and burst-recovery
numbers in a byte-deterministic :class:`~repro.traffic.slo.
TrafficReport`.
"""

from repro.traffic.driver import (
    OpenLoopDriver,
    TrafficRunResult,
    WindowSample,
    materialize,
)
from repro.traffic.generator import (
    ArrivalEvent,
    TrafficGenerator,
)
from repro.traffic.scenario import (
    FleetOverloadScenario,
    OVERLOAD_TIERS,
    overload_curve,
    run_overload_soak,
)
from repro.traffic.slo import (
    BurstRecovery,
    TierSummary,
    TrafficReport,
    evaluate,
)
from repro.traffic.spec import (
    DEFAULT_TIERS,
    BurstSpec,
    TierSpec,
    TrafficSpec,
)
from repro.traffic.trace import TRACE_KIND, TrafficTrace

__all__ = [
    "ArrivalEvent",
    "BurstRecovery",
    "BurstSpec",
    "DEFAULT_TIERS",
    "FleetOverloadScenario",
    "OVERLOAD_TIERS",
    "OpenLoopDriver",
    "TRACE_KIND",
    "TierSpec",
    "TierSummary",
    "TrafficGenerator",
    "TrafficReport",
    "TrafficRunResult",
    "TrafficSpec",
    "TrafficTrace",
    "WindowSample",
    "evaluate",
    "materialize",
    "overload_curve",
    "run_overload_soak",
]
