"""Solver scalability: invocation cost as the pipeline grows.

The paper sizes its search-space discussion at N = 9 stages, M = 4 PU
classes (4^9 ~ 262K raw assignments).  This benchmark sweeps N on
synthetic pipelines to show how the constraint encoding plus
branch-and-bound scales - the practical question for anyone feeding
BetterTogether a longer pipeline.
"""

import time

import pytest

from repro.apps import build_synthetic_application
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.soc import get_platform

STAGE_COUNTS = (4, 6, 9, 12)


@pytest.fixture(scope="module")
def tables():
    platform = get_platform("pixel7a")
    profiler = BTProfiler(platform, repetitions=2)
    out = {}
    for n in STAGE_COUNTS:
        app = build_synthetic_application(seed=42, stage_count=n)
        out[n] = (
            app,
            profiler.profile(app).restricted(
                platform.schedulable_classes()
            ),
        )
    return out


def test_solver_scaling_with_stage_count(benchmark, tables):
    def sweep():
        results = {}
        for n, (app, table) in tables.items():
            start = time.perf_counter()
            optimizer = BTOptimizer(app, table, k=5)
            optimization = optimizer.optimize()
            results[n] = (
                time.perf_counter() - start,
                optimization.solver_invocations,
                len(optimization.candidates),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nstages -> total wall, invocations, candidates:")
    for n, (wall, invocations, candidates) in sorted(results.items()):
        print(f"  N={n:2d}: {wall * 1e3:8.1f} ms over {invocations} "
              f"invocations, {candidates} candidates")
    # The paper-scale case stays comfortably interactive.
    assert results[9][0] < 5.0
    # And the 12-stage case still completes within a lenient budget.
    assert results[12][0] < 60.0
    for n in STAGE_COUNTS:
        assert results[n][2] >= 1
