"""Tests for the synthetic pipeline generator."""

import numpy as np
import pytest

from repro.apps import build_synthetic_application
from repro.core import BetterTogether, Chunk
from repro.core.profiler import BTProfiler
from repro.errors import KernelError
from repro.eval import speedup_bounds
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import get_platform


class TestGeneration:
    def test_deterministic(self):
        a = build_synthetic_application(seed=1, stage_count=5)
        b = build_synthetic_application(seed=1, stage_count=5)
        assert a.stage_names == b.stage_names
        for sa, sb in zip(a.stages, b.stages):
            assert sa.work.flops == sb.work.flops
            assert sa.work.divergence == sb.work.divergence

    def test_seed_changes_pipeline(self):
        a = build_synthetic_application(seed=1, stage_count=5)
        b = build_synthetic_application(seed=2, stage_count=5)
        assert any(
            sa.work.flops != sb.work.flops
            for sa, sb in zip(a.stages, b.stages)
        )

    def test_stage_count_respected(self):
        for n in (1, 4, 12):
            app = build_synthetic_application(seed=0, stage_count=n)
            assert app.num_stages == n

    def test_validation(self):
        with pytest.raises(KernelError):
            build_synthetic_application(seed=0, stage_count=0)
        with pytest.raises(KernelError):
            build_synthetic_application(seed=0, heterogeneity=1.5)
        with pytest.raises(KernelError):
            build_synthetic_application(seed=0, spread=0.5)

    def test_zero_heterogeneity_collapses_structure(self):
        app = build_synthetic_application(seed=3, stage_count=6,
                                          heterogeneity=0.0)
        cpu_effs = {s.work.cpu_efficiency for s in app.stages}
        gpu_effs = {s.work.gpu_efficiency for s in app.stages}
        assert len(cpu_effs) == 1
        assert len(gpu_effs) == 1


class TestHeterogeneityKnob:
    def test_more_heterogeneity_more_exploitable_speedup(self):
        """The generator's whole purpose: the speedup bound available to
        the scheduler should grow with the heterogeneity knob (averaged
        over seeds to beat sampling noise)."""
        platform = get_platform("pixel7a")
        profiler = BTProfiler(platform, repetitions=2)

        def mean_bound(heterogeneity):
            bounds = []
            for seed in range(6):
                app = build_synthetic_application(
                    seed=seed, stage_count=8, heterogeneity=heterogeneity
                )
                table = profiler.profile(app).restricted(
                    platform.schedulable_classes()
                )
                bounds.append(speedup_bounds(app, table).max_speedup)
            return sum(bounds) / len(bounds)

        assert mean_bound(1.0) > mean_bound(0.0)


class TestExecution:
    def test_functional_kernels_run_and_are_order_sensitive(self):
        app = build_synthetic_application(seed=4, stage_count=4)
        outputs = []

        def capture(task, index):
            outputs.append(np.asarray(task["payload"]).copy())

        ThreadedPipelineExecutor(
            app, [Chunk(0, 2, "big"), Chunk(2, 4, "gpu")]
        ).run(2, on_complete=capture)
        assert len(outputs) == 2
        assert not np.array_equal(outputs[0], outputs[1])

    def test_full_flow_on_synthetic(self):
        platform = get_platform("jetson_orin_nano")
        app = build_synthetic_application(seed=5, stage_count=6)
        plan = BetterTogether(platform, repetitions=2, k=4,
                              eval_tasks=6).run(app)
        assert plan.schedule.num_stages == 6
