"""Core BetterTogether abstractions (paper section 3.1).

* A :class:`Stage` is a unit of computation with a well-defined input and
  output, implemented by one compute kernel per backend and characterized
  by a :class:`~repro.soc.workprofile.WorkProfile`.
* A :class:`Chunk` is one or more *contiguous* stages - the basic unit of
  scheduling (one dispatcher thread per chunk at run time).
* An :class:`Application` is a sequence of stages where each stage's
  output feeds the next.
* A :class:`TaskGraph` expresses richer acyclic dependencies (e.g. the
  Octree pipeline's final stage consumes stages 3, 4 and 6); it linearizes
  to a stage sequence by topological sort, as the paper prescribes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.kernels.base import BACKENDS, CPU, GPU
from repro.soc.workprofile import WorkProfile

#: A compute kernel: mutates the task's buffers in place.
KernelFn = Callable[[Any], None]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage.

    Attributes:
        name: Unique within the application.
        work: Work characterization consumed by the virtual SoC.
        kernels: Backend name -> kernel function.  Both ``cpu`` and ``gpu``
            must be present (the paper requires host- and device-side
            implementations as input, Fig. 2 step 1); purely structural
            studies may pass ``None`` placeholders via
            :meth:`Stage.model_only`.
    """

    name: str
    work: WorkProfile
    kernels: Mapping[str, Optional[KernelFn]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("stages need a non-empty name")
        unknown = set(self.kernels) - set(BACKENDS)
        if unknown:
            raise SchedulingError(
                f"stage {self.name!r}: unknown backends {sorted(unknown)}"
            )

    @classmethod
    def model_only(cls, name: str, work: WorkProfile) -> "Stage":
        """A stage with no executable kernels (profiling/scheduling only)."""
        return cls(name=name, work=work, kernels={CPU: None, GPU: None})

    def kernel(self, backend: str) -> KernelFn:
        """The kernel for a backend; raises if missing."""
        if backend not in BACKENDS:
            raise SchedulingError(f"unknown backend {backend!r}")
        fn = self.kernels.get(backend)
        if fn is None:
            raise SchedulingError(
                f"stage {self.name!r} has no executable {backend} kernel"
            )
        return fn

    def has_kernel(self, backend: str) -> bool:
        """Whether an executable kernel exists for ``backend``."""
        return self.kernels.get(backend) is not None

    def kernel_for_pu(self, pu_class: str) -> KernelFn:
        """Pick the kernel variant a PU class executes (GPU gets the
        device kernel, every CPU cluster the host kernel)."""
        return self.kernel(GPU if pu_class == GPU else CPU)


@dataclass(frozen=True)
class Chunk:
    """A maximal run of contiguous stages mapped to one PU class."""

    start: int
    stop: int
    pu_class: str

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise SchedulingError(
                f"bad chunk bounds [{self.start}, {self.stop})"
            )

    @property
    def stage_indices(self) -> range:
        return range(self.start, self.stop)

    def __len__(self) -> int:
        return self.stop - self.start


class Application:
    """A streaming application: an ordered sequence of stages.

    Args:
        name: Application identifier (e.g. ``alexnet-dense``).
        stages: The linear stage pipeline.
        make_task: Optional factory producing a fresh task (a mutable
            mapping of named numpy buffers) for functional execution; the
            integer argument seeds the input generator.
        validate_task: Optional callable checking a completed task,
            raising on corruption - used by correctness tests and the
            threaded runtime.
        description: Human-readable summary (Table 1 contents).
    """

    def __init__(
        self,
        name: str,
        stages: Sequence[Stage],
        make_task: Optional[Callable[[int], Dict[str, Any]]] = None,
        validate_task: Optional[Callable[[Dict[str, Any]], None]] = None,
        description: str = "",
        input_kind: str = "",
    ):
        if not stages:
            raise SchedulingError("an application needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate stage names in {name!r}")
        self.name = name
        self.stages: Tuple[Stage, ...] = tuple(stages)
        self.make_task = make_task
        self.validate_task = validate_task
        self.description = description
        self.input_kind = input_kind

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> Stage:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise SchedulingError(f"{self.name!r} has no stage {name!r}")

    def stage_index(self, name: str) -> int:
        """Pipeline position of the named stage."""
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise SchedulingError(f"{self.name!r} has no stage {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Application({self.name!r}, {self.num_stages} stages: "
            f"{', '.join(self.stage_names)})"
        )


class TaskGraph:
    """An acyclic stage-dependency graph (paper section 3.1, Task Graph).

    BetterTogether's core model is a linear sequence; richer dependency
    structures are supported by topologically sorting the graph and
    running the result as a linear pipeline.  The sort is deterministic:
    among ready nodes, insertion order wins (Kahn's algorithm with a FIFO
    frontier), so repeated builds produce identical pipelines.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, Stage] = {}
        self._deps: Dict[str, List[str]] = {}
        self._order: List[str] = []

    def add_stage(self, stage: Stage, deps: Sequence[str] = ()) -> None:
        """Add a stage whose inputs come from the named dependencies."""
        if stage.name in self._stages:
            raise SchedulingError(f"duplicate stage {stage.name!r}")
        for dep in deps:
            if dep not in self._stages:
                raise SchedulingError(
                    f"stage {stage.name!r} depends on unknown {dep!r}"
                )
        self._stages[stage.name] = stage
        self._deps[stage.name] = list(deps)
        self._order.append(stage.name)

    @property
    def num_stages(self) -> int:
        return len(self._stages)

    def dependencies(self, name: str) -> Tuple[str, ...]:
        """The declared dependencies of a stage."""
        try:
            return tuple(self._deps[name])
        except KeyError:
            raise SchedulingError(f"unknown stage {name!r}") from None

    def linearize(self) -> List[Stage]:
        """Deterministic topological order of the stages."""
        indegree = {name: len(deps) for name, deps in self._deps.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self._stages}
        for name, deps in self._deps.items():
            for dep in deps:
                dependents[dep].append(name)
        ready = deque(
            name for name in self._order if indegree[name] == 0
        )
        result: List[Stage] = []
        while ready:
            name = ready.popleft()
            result.append(self._stages[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(result) != len(self._stages):
            remaining = sorted(
                name for name, deg in indegree.items() if deg > 0
            )
            raise SchedulingError(f"dependency cycle among {remaining}")
        return result

    def to_application(self, name: str, **kwargs: Any) -> Application:
        """Linearize and wrap as an :class:`Application`."""
        return Application(name=name, stages=self.linearize(), **kwargs)
