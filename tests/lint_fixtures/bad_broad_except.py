"""Lint fixture (never imported): BROAD-EXCEPT violations."""


def swallow(kernel):
    try:
        kernel()
    except Exception:
        return None


def partially_routed(kernel, log):
    try:
        kernel()
    except Exception as exc:
        if log is not None:
            log.record(exc)
