"""Suppression grammar fixtures.

A ``bt-flow`` suppression only counts when it carries a
``-- justification``; a bare disable neither silences the finding nor
passes review - it earns a BAD-SUPPRESSION on top.
"""

import time


def record_build_stamp(path):
    payload = {"stamp": time.time()}
    # Justified: suppressed, no finding.
    # bt-flow: disable=FLOW-WALL-CLOCK -- build stamp is intentionally
    write_json_report(path, payload)


def record_naked_stamp(path):
    payload = {"stamp": time.time()}
    # bt-flow: disable=FLOW-WALL-CLOCK
    write_json_report(path, payload)
