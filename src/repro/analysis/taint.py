"""Taint lattice and source/launder/sink tables for ``repro flow``.

The flow analysis tracks *sets of taint kinds* per value.  A kind names
one family of nondeterminism:

========================  ==============================================
kind                      introduced by
========================  ==============================================
``WALL-CLOCK``            ``time.time``/``perf_counter``/``monotonic``
                          and datetime "now" reads
``GLOBAL-RNG``            module-level ``random.*`` / ``np.random.*``
                          draws (and ``default_rng()`` with no seed)
``ENV-READ``              ``os.environ`` / ``os.getenv`` reads
``UNORDERED``             a ``set``/``frozenset`` value itself
``UNORDERED-ITER``        a value whose *selection or position* came
                          from iterating an unordered collection
``THREAD-ID``             thread/process identity reads
========================  ==============================================

The empty set is the lattice bottom ("deterministic"); join is set
union.  During the summary phase the sets additionally carry symbolic
markers ``@param:i`` standing for "whatever the caller passes as
positional parameter *i*" - :func:`concrete` / :func:`markers` split a
taint set back into the two halves.

This module is pure data + tiny predicates; the propagation engine
lives in :mod:`repro.analysis.flow`.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.rules import _SEEDED_RNG_OK, _STDLIB_RNG_OK, \
    dotted_name

Taint = FrozenSet[str]

EMPTY: Taint = frozenset()

WALL_CLOCK = "WALL-CLOCK"
GLOBAL_RNG = "GLOBAL-RNG"
ENV_READ = "ENV-READ"
UNORDERED = "UNORDERED"
UNORDERED_ITER = "UNORDERED-ITER"
THREAD_ID = "THREAD-ID"

#: kind -> the rule id a sink hit reports under.
RULE_FOR_KIND: Dict[str, str] = {
    WALL_CLOCK: "FLOW-WALL-CLOCK",
    GLOBAL_RNG: "FLOW-GLOBAL-RNG",
    ENV_READ: "FLOW-ENV-READ",
    UNORDERED: "FLOW-UNORDERED-ITER",
    UNORDERED_ITER: "FLOW-UNORDERED-ITER",
    THREAD_ID: "FLOW-THREAD-ID",
}

#: Every flow rule id (for suppression validation and docs).
ALL_FLOW_RULES: Tuple[str, ...] = (
    "FLOW-WALL-CLOCK", "FLOW-GLOBAL-RNG", "FLOW-ENV-READ",
    "FLOW-UNORDERED-ITER", "FLOW-THREAD-ID",
    "CLOCK-MIX", "CLOCK-CALL", "BAD-SUPPRESSION",
)

#: rule id -> one-line summary (``repro flow --list-rules``).
RULE_SUMMARIES: Dict[str, str] = {
    "FLOW-WALL-CLOCK": ("wall-clock read (time.time/perf_counter) "
                        "flows into a report/artifact sink"),
    "FLOW-GLOBAL-RNG": ("module-level RNG draw flows into a "
                        "report/artifact sink"),
    "FLOW-ENV-READ": ("os.environ read flows into a report/artifact "
                      "sink"),
    "FLOW-UNORDERED-ITER": ("set/unordered iteration order flows into "
                            "a report/artifact sink"),
    "FLOW-THREAD-ID": ("thread/process identity flows into a "
                       "report/artifact sink"),
    "CLOCK-MIX": ("arithmetic/comparison mixes control ticks with "
                  "virtual seconds"),
    "CLOCK-CALL": ("call passes one clock domain where the parameter "
                   "name declares the other"),
    "BAD-SUPPRESSION": ("bt-flow suppression without the required "
                        "'-- justification' suffix"),
}

_PARAM_PREFIX = "@param:"


def param_marker(index: int) -> str:
    return f"{_PARAM_PREFIX}{index}"


def concrete(taint: Taint) -> Taint:
    """The concrete kinds in a taint set (markers stripped)."""
    if not taint:
        return EMPTY
    return frozenset(k for k in taint
                     if not k.startswith(_PARAM_PREFIX))


def markers(taint: Taint) -> FrozenSet[int]:
    """The ``@param:i`` indices in a taint set."""
    if not taint:
        return _NO_MARKERS
    return frozenset(int(k[len(_PARAM_PREFIX):]) for k in taint
                     if k.startswith(_PARAM_PREFIX))


_NO_MARKERS: FrozenSet[int] = frozenset()


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
#: dotted call name -> taint kind.  ``time.monotonic`` is deliberately
#: absent: it is the *sanctioned* clock for deadline/timeout control
#: flow (watchdog, SPSC waits), and control dependence is out of scope
#: here - only ``time.time``/``perf_counter`` measurement values that
#: could land in report bytes are tracked as data.
_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
}

#: Kinds that describe a *value's* nondeterminism (safe to track
#: through the name-keyed field table).  The container-order kinds are
#: excluded: keyed only by field *name*, they over-couple unrelated
#: classes and cascade to the whole heap within two fixpoint rounds.
FIELD_TRACKED_KINDS: FrozenSet[str] = frozenset({
    WALL_CLOCK, GLOBAL_RNG, ENV_READ, THREAD_ID,
})

#: Field-name fragments that mark *control-plane* time state: stop
#: conditions, not measurements.  A wall-clock read stored into a
#: deadline/budget field decides *when* code runs, never what bytes a
#: report contains, and control dependence is out of scope - so these
#: stores do not enter the field-taint table.
CONTROL_PLANE_FIELDS: Tuple[str, ...] = (
    "deadline", "budget", "timeout", "patience",
)


def is_control_plane_field(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in CONTROL_PLANE_FIELDS)

_THREAD_ID_CALLS = {
    "threading.get_ident", "threading.get_native_id",
    "threading.current_thread", "os.getpid", "os.getppid",
}

_ENV_CALLS = {"os.getenv", "os.environ.get", "environ.get"}


def source_kind(call: ast.Call) -> Optional[str]:
    """The taint kind a call introduces, if it is a source."""
    name = dotted_name(call.func)
    if name in _CLOCK_CALLS:
        return WALL_CLOCK
    if name in _THREAD_ID_CALLS:
        return THREAD_ID
    if name in _ENV_CALLS:
        return ENV_READ
    if name.startswith("random."):
        if name.split(".", 1)[1] not in _STDLIB_RNG_OK:
            return GLOBAL_RNG
    elif name.startswith(("np.random.", "numpy.random.")):
        attr = name.rsplit(".", 1)[1]
        if attr not in _SEEDED_RNG_OK:
            return GLOBAL_RNG
        if attr == "default_rng" and not call.args and not call.keywords:
            # Unseeded default_rng() pulls OS entropy.
            return GLOBAL_RNG
    return None


def is_env_read(node: ast.Subscript) -> bool:
    """``os.environ[...]`` subscript reads."""
    return dotted_name(node.value) in ("os.environ", "environ")


# ----------------------------------------------------------------------
# Launderers
# ----------------------------------------------------------------------
#: Builtins whose result does not depend on argument *order*: they
#: clear the unordered kinds.  ``sum`` is deliberately absent - float
#: summation is order-dependent, so summing a set stays tainted.
_ORDER_INSENSITIVE = {"sorted", "len", "min", "max", "any", "all"}

#: Calls that materialise an iteration order out of an unordered
#: collection: the *container* kind becomes the *element* kind.
_ORDERING_CASTS = {"list", "tuple"}

#: Calls that build a fresh unordered collection.
_SET_BUILDERS = {"set", "frozenset"}


def _launder_tag(call: ast.Call) -> Optional[str]:
    """Which laundering family a call belongs to (static per node)."""
    name = dotted_name(call.func)
    if name in _ORDER_INSENSITIVE:
        return "order"
    if name in _ORDERING_CASTS:
        return "cast"
    if name in _SET_BUILDERS:
        return "set"
    terminal = name.rsplit(".", 1)[-1]
    if (terminal in _SEEDED_RNG_OK
            and (name.startswith(("np.random.", "numpy.random."))
                 or terminal == "default_rng")):
        # A *seeded* generator is exactly as deterministic as its
        # seed; a bare ``default_rng()`` pulls OS entropy.
        if call.args or call.keywords:
            return "seed_pass"
        return "seed_global"
    return None


def apply_launder(tag: str, joined_args: Taint) -> Taint:
    """The result taint of a laundering call classified as ``tag``."""
    if tag == "order":
        # sorted()/len()/min()... fix or ignore iteration order.
        return joined_args - {UNORDERED, UNORDERED_ITER}
    if tag == "cast":
        # list(s)/tuple(s) materialise an order out of the container.
        if UNORDERED in joined_args:
            return (joined_args - {UNORDERED}) | {UNORDERED_ITER}
        return joined_args
    if tag == "set":
        # Building a set launders the *element order* the input had,
        # but the result is itself unordered again.
        return (joined_args - {UNORDERED_ITER}) | {UNORDERED}
    if tag == "seed_pass":
        return joined_args
    return joined_args | {GLOBAL_RNG}  # seed_global


def launder(call: ast.Call, joined_args: Taint) -> Optional[Taint]:
    """The result taint of a sanctioned laundering call, or ``None``
    if this call is not a launderer."""
    tag = _launder_tag(call)
    if tag is None:
        return None
    return apply_launder(tag, joined_args)


#: classify_call result tuple: (source kind, launder tag, sink).
CallClass = Tuple[Optional[str], Optional[str],
                  Optional[Tuple[str, Optional[int]]]]


def classify_call(call: ast.Call) -> CallClass:
    """``(source kind, launder tag, sink)`` for a call node.

    All three are purely syntactic, so the classification is memoized
    on the node - the flow engine revisits the same call sites every
    fixpoint pass.
    """
    cached = getattr(call, "_bt_call_class", None)
    if cached is not None:
        return cached
    result = (source_kind(call), _launder_tag(call),
              sink_for_call(call))
    try:
        call._bt_call_class = result  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted nodes
        pass
    return result


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
#: terminal call name -> (description, positional index of the payload
#: argument; ``None`` = every argument is sensitive).
SINK_CALLS: Dict[str, Tuple[str, Optional[int]]] = {
    "write_json_report": ("serialized JSON report", 1),
    "write_artifact": ("checksummed artifact payload", 2),
    "atomic_write_text": ("atomically written artifact text", 1),
    "artifact_sha256": ("artifact checksum input", 0),
    "save": ("serialized artifact", 0),
    "write_trace": ("exported trace payload", 1),
}

#: Constructors whose every field lands in a byte-compared or
#: checksummed report.
SINK_CONSTRUCTORS: FrozenSet[str] = frozenset({
    "FleetReport", "ServeReport", "SessionReport", "FaultReport",
    "MemoryReport", "EnergyReport", "SoakScenario", "FleetSoakScenario",
    "SimulatedRunResult", "TraceEvent", "TrafficReport", "TrafficTrace",
    "BlameMatrix", "BurnAlert",
})


def sink_for_call(call: ast.Call) -> Optional[Tuple[str, Optional[int]]]:
    """``(description, payload arg index)`` when the call is a sink."""
    func = call.func
    terminal = dotted_name(func).rsplit(".", 1)[-1] or (
        func.attr if isinstance(func, ast.Attribute) else "")
    if terminal in SINK_CALLS:
        return SINK_CALLS[terminal]
    if terminal in SINK_CONSTRUCTORS:
        return (f"{terminal} report field", None)
    return None


def describe(kinds: Taint) -> str:
    """Human-readable, deterministic rendering of a kind set."""
    return "+".join(sorted(concrete(kinds)))
