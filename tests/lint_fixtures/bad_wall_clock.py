"""Lint fixture (never imported): WALL-CLOCK violation."""

import time


def deadline_in(seconds):
    return time.time() + seconds
