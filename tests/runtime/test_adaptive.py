"""Tests for the adaptive (drift-reacting) deployment controller."""

import pytest

from repro.apps import build_octree_application
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.errors import PipelineError, SchedulingError
from repro.runtime import AdaptivePipeline
from repro.soc import get_platform


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


@pytest.fixture(scope="module")
def jetson_candidates(app):
    platform = get_platform("jetson_orin_nano")
    table = BTProfiler(platform, repetitions=3).profile(app)
    return BTOptimizer(
        app, table.restricted(platform.schedulable_classes()), k=6
    ).optimize().candidates


def make_pipeline(app, candidates, platform_name="jetson_orin_nano",
                  **kwargs):
    kwargs.setdefault("eval_tasks", 8)
    kwargs.setdefault("window_tasks", 10)
    return AdaptivePipeline(
        application=app,
        platform=get_platform(platform_name),
        candidates=candidates,
        **kwargs,
    )


class TestSteadyState:
    def test_stable_conditions_never_retune(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates)
        records = pipeline.run_windows(4)
        assert all(not record.retuned for record in records)
        assert len({r.schedule.assignments for r in records}) == 1

    def test_history_accumulates(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates)
        pipeline.run_windows(3)
        assert [r.window_index for r in pipeline.history] == [0, 1, 2]


class TestDriftReaction:
    def test_power_mode_flip_triggers_retune(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates)
        pipeline.run_window()
        # Conditions change: drop to the 7 W mode (everything slower).
        pipeline.set_platform(get_platform("jetson_orin_nano_lp"))
        drifted = pipeline.run_window()  # measured on LP, drift recorded
        reaction = pipeline.run_window()
        assert not drifted.retuned
        assert reaction.retuned
        assert reaction.platform == "jetson_orin_nano_lp"

    def test_after_retune_reference_resets(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates)
        pipeline.run_window()
        pipeline.set_platform(get_platform("jetson_orin_nano_lp"))
        pipeline.run_window()
        pipeline.run_window()  # retunes
        steady = pipeline.run_windows(2)
        assert all(not record.retuned for record in steady)

    def test_huge_threshold_never_reacts(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates,
                                 drift_threshold=100.0)
        pipeline.run_window()
        pipeline.set_platform(get_platform("jetson_orin_nano_lp"))
        records = pipeline.run_windows(3)
        assert all(not record.retuned for record in records)


class TestCandidateExhaustion:
    def test_exhaustion_fails_explicitly(self, app, jetson_candidates):
        """Failing every PU class must error out, never silently
        dispatch onto dead hardware."""
        pipeline = make_pipeline(app, jetson_candidates)
        pipeline.run_window()
        classes = sorted({
            pu_class
            for candidate in jetson_candidates
            for pu_class in candidate.schedule.pu_classes_used
        })
        with pytest.raises(SchedulingError,
                           match="full re-run .profiling included."):
            for pu_class in classes:
                pipeline.mark_pu_failed(pu_class)
        # Every cached candidate now touches a failed PU - including
        # the deployed schedule.
        assert (set(pipeline.schedule.pu_classes_used)
                & pipeline.failed_pus)
        with pytest.raises(SchedulingError, match="failed PUs"):
            pipeline.run_window()

    def test_surviving_candidate_keeps_streaming(
        self, app, jetson_candidates
    ):
        """Losing one class falls back instead of failing, as long as
        some cached candidate avoids it."""
        if not any(
            "gpu" not in c.schedule.pu_classes_used
            for c in jetson_candidates
        ):
            pytest.skip("no CPU-only candidate cached")
        pipeline = make_pipeline(app, jetson_candidates)
        pipeline.run_window()
        pipeline.mark_pu_failed("gpu")
        record = pipeline.run_window()
        assert "gpu" not in record.schedule.pu_classes_used

    def test_mark_failed_is_idempotent(self, app, jetson_candidates):
        pipeline = make_pipeline(app, jetson_candidates)
        if not any(
            "gpu" not in c.schedule.pu_classes_used
            for c in jetson_candidates
        ):
            pytest.skip("no CPU-only candidate cached")
        pipeline.mark_pu_failed("gpu")
        assert pipeline.mark_pu_failed("gpu") is False


class TestValidation:
    def test_needs_candidates(self, app):
        with pytest.raises(SchedulingError):
            AdaptivePipeline(
                application=app,
                platform=get_platform("jetson_orin_nano"),
                candidates=[],
            )

    def test_rejects_platform_without_usable_candidates(
        self, app, jetson_candidates
    ):
        gpu_using = [
            c for c in jetson_candidates
            if "gpu" in c.schedule.pu_classes_used
        ]
        assert gpu_using  # precondition
        pipeline = make_pipeline(app, gpu_using)
        # The CPU-only Pi cannot host any GPU-using candidate.
        with pytest.raises(SchedulingError):
            pipeline.set_platform(get_platform("raspberry_pi5"))

    def test_rejects_tiny_window(self, app, jetson_candidates):
        with pytest.raises(PipelineError):
            make_pipeline(app, jetson_candidates, window_tasks=1)
