"""Lint fixture (never imported): GLOBAL-RNG violations.

The file name contains ``profiler`` so the determinism rule applies.
"""

import random

import numpy as np


def jitter():
    return random.random() + np.random.rand()
