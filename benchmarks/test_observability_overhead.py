"""Benchmark guard: observability must be free when disabled.

The instrumentation contract (see ``docs/architecture.md``,
"Observability") is that every hot path guards on ``tracer().enabled``
/ ``metrics().enabled`` **once per run**, never per task or per event.
These tests enforce both halves of that contract on the DES hot path:

* the number of guard evaluations per simulated run is a small
  constant, independent of the task count (a counting sentinel stands
  in for the disabled instruments);
* the measured cost of those evaluations is under 2% of the run's own
  wall time - by a huge margin, since a handful of attribute reads
  cannot compete with a 300-task simulation.
"""

import time

import pytest

from repro.apps import build_alexnet_sparse
from repro.apps.synthetic import build_synthetic_application
from repro.core import Chunk
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer
from repro.runtime import SimulatedPipelineExecutor
from repro.serve import PipelineServer, ServerConfig, TenantSpec
from repro.soc import get_platform

N_TASKS = 300


class CountingFlag:
    """Falsy sentinel that counts how often the guard consults it."""

    def __init__(self):
        self.checks = 0

    def __bool__(self):
        self.checks += 1
        return False


def make_executor():
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    chunks = [Chunk(0, 5, "big"),
              Chunk(5, application.num_stages, "gpu")]
    return SimulatedPipelineExecutor(application, chunks, platform)


def counted_run(n_tasks):
    """Run the DES with counting sentinels installed; return checks."""
    trc, reg = Tracer(enabled=False), MetricsRegistry(enabled=False)
    trc.enabled = CountingFlag()
    reg.enabled = CountingFlag()
    prev_tracer, prev_metrics = set_tracer(trc), set_metrics(reg)
    try:
        make_executor().run(n_tasks)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
    return trc.enabled.checks + reg.enabled.checks


def test_guard_checks_constant_per_run():
    small = counted_run(30)
    large = counted_run(N_TASKS)
    # Per-run, not per-task: 10x the tasks, identical guard count.
    assert large == small
    assert large <= 8


def test_disabled_overhead_under_two_percent():
    executor = make_executor()
    executor.run(N_TASKS)  # warm the noise cache first
    start = time.perf_counter()
    executor.run(N_TASKS)
    run_s = time.perf_counter() - start

    checks = counted_run(N_TASKS)
    # Cost of one guard evaluation: a global read + attribute read +
    # truthiness test, measured directly.
    trc = Tracer(enabled=False)
    reps = 100_000
    start = time.perf_counter()
    for _ in range(reps):
        if trc.enabled:
            pass  # pragma: no cover
    per_check_s = (time.perf_counter() - start) / reps

    overhead_s = checks * per_check_s
    fraction = overhead_s / run_s
    print(f"\n{checks} guard checks x {per_check_s * 1e9:.0f} ns "
          f"= {overhead_s * 1e6:.2f} us over a {run_s * 1e3:.1f} ms run "
          f"({fraction * 100:.4f}%)")
    assert fraction < 0.02


def make_server(attribution=False, window_tasks=4):
    server = PipelineServer(
        get_platform("pixel7a"),
        seed=7,
        config=ServerConfig(max_ticks=16, attribution=attribution),
    )
    for index in range(2):
        server.submit(TenantSpec(
            name=f"tenant-{index}",
            application=build_synthetic_application(
                seed=7 + index, stage_count=2,
            ),
            priority=1,
            windows=3,
            window_tasks=window_tasks,
        ))
    return server


def test_attribution_off_never_reaches_decompose(monkeypatch):
    """With ``attribution=False`` the blame machinery is never even
    imported into the window path - one config-bool short-circuit."""
    import repro.obs.attribution as attribution

    calls = {"n": 0}
    real = attribution.decompose

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(attribution, "decompose", counting)
    make_server(attribution=False).run(timeout_s=300.0)
    assert calls["n"] == 0
    make_server(attribution=True).run(timeout_s=300.0)
    assert calls["n"] > 0


def test_attribution_guard_is_per_window_not_per_task():
    """The attribution-off guard is consulted O(windows) times - the
    task count never enters (same discipline as the DES guards)."""

    def counted(window_tasks):
        server = make_server(window_tasks=window_tasks)
        flag = CountingFlag()
        object.__setattr__(server.config, "attribution", flag)
        server.run(timeout_s=300.0)
        return flag.checks

    small, large = counted(4), counted(16)
    # 4x the tasks per window, identical guard count; and the count
    # is bounded by the windows actually served (2 tenants x 3) plus
    # the one report-time summary check.
    assert large == small
    assert large <= 2 * 3 + 1


def test_attribution_off_overhead_under_two_percent():
    """The cost of the off-path guard (a frozen-dataclass attribute
    read per served window) is noise against the run itself."""
    server = make_server()
    start = time.perf_counter()
    server.run(timeout_s=300.0)
    run_s = time.perf_counter() - start
    windows = sum(m.windows_served
                  for m in server.report().tenants.values())

    config = ServerConfig()
    reps = 100_000
    start = time.perf_counter()
    for _ in range(reps):
        if config.attribution:
            pass  # pragma: no cover
    per_check_s = (time.perf_counter() - start) / reps

    fraction = (windows * per_check_s) / run_s
    print(f"\n{windows} attribution guards x "
          f"{per_check_s * 1e9:.0f} ns over a {run_s * 1e3:.1f} ms "
          f"serve run ({fraction * 100:.5f}%)")
    assert fraction < 0.02


def test_disabled_run_wall_time(benchmark):
    """Absolute ceiling with the (disabled) instrumentation in place -
    the same bar the uninstrumented simulator benchmark holds."""
    executor = make_executor()
    result = benchmark(executor.run, N_TASKS)
    assert result.n_tasks == N_TASKS
    assert benchmark.stats["mean"] < 0.25
