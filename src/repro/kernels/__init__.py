"""Compute kernels (paper section 3.1).

Every pipeline stage ships a CPU variant (written like the paper's OpenMP
kernels) and a GPU variant (structured like the CUDA/Vulkan kernels:
grid-stride maps, multi-pass sorts, sweep-based scans, tiled GEMMs), plus
a work-profile builder consumed by the virtual SoC's cost model.
"""

from repro.kernels.base import BACKENDS, CPU, GPU
from repro.kernels.morton import (
    morton_encode,
    morton_encode_cpu,
    morton_encode_gpu,
    morton_work_profile,
)
from repro.kernels.nn import (
    ConvSpec,
    conv2d_relu_cpu,
    conv2d_relu_gpu,
    conv_work_profile,
    im2col,
    linear_cpu,
    linear_gpu,
    linear_work_profile,
    maxpool2x2_cpu,
    maxpool2x2_gpu,
    maxpool_work_profile,
)
from repro.kernels.octree import (
    Octree,
    allocate_octree,
    build_octree_cpu,
    build_octree_gpu,
    count_edges_cpu,
    count_edges_gpu,
    edge_count_work_profile,
    octree_build_work_profile,
)
from repro.kernels.radix_tree import (
    RadixTree,
    allocate_tree,
    build_radix_tree_cpu,
    build_radix_tree_gpu,
    build_radix_tree_reference,
    radix_tree_work_profile,
)
from repro.kernels.scan import (
    exclusive_scan_cpu,
    exclusive_scan_gpu,
    scan_work_profile,
)
from repro.kernels.sort import sort_codes_cpu, sort_codes_gpu, sort_work_profile
from repro.kernels.sparse import (
    CsrMatrix,
    prune_to_csr,
    sparse_conv2d_relu_cpu,
    sparse_conv2d_relu_gpu,
    sparse_conv_work_profile,
)
from repro.kernels.unique import unique_cpu, unique_gpu, unique_work_profile

__all__ = [
    "BACKENDS",
    "CPU",
    "ConvSpec",
    "CsrMatrix",
    "GPU",
    "Octree",
    "RadixTree",
    "allocate_octree",
    "allocate_tree",
    "build_octree_cpu",
    "build_octree_gpu",
    "build_radix_tree_cpu",
    "build_radix_tree_gpu",
    "build_radix_tree_reference",
    "conv2d_relu_cpu",
    "conv2d_relu_gpu",
    "conv_work_profile",
    "count_edges_cpu",
    "count_edges_gpu",
    "edge_count_work_profile",
    "exclusive_scan_cpu",
    "exclusive_scan_gpu",
    "im2col",
    "linear_cpu",
    "linear_gpu",
    "linear_work_profile",
    "maxpool2x2_cpu",
    "maxpool2x2_gpu",
    "maxpool_work_profile",
    "morton_encode",
    "morton_encode_cpu",
    "morton_encode_gpu",
    "morton_work_profile",
    "octree_build_work_profile",
    "prune_to_csr",
    "radix_tree_work_profile",
    "scan_work_profile",
    "sort_codes_cpu",
    "sort_codes_gpu",
    "sort_work_profile",
    "sparse_conv2d_relu_cpu",
    "sparse_conv2d_relu_gpu",
    "sparse_conv_work_profile",
    "unique_cpu",
    "unique_gpu",
    "unique_work_profile",
]
