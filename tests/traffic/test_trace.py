"""TrafficTrace: record, persist (checksummed), load, replay surface."""

import json

import pytest

from repro.errors import TrafficError
from repro.serialization import SerializationError
from repro.traffic import TRACE_KIND, TrafficGenerator, TrafficTrace
from repro.traffic.generator import ArrivalEvent


@pytest.fixture()
def trace(small_spec):
    return TrafficTrace.record(small_spec, seed=5)


class TestRecord:
    def test_record_freezes_generator_stream(self, small_spec, trace):
        assert list(trace.events) == TrafficGenerator(
            small_spec, seed=5
        ).events()
        assert trace.seed == 5
        assert trace.spec == small_spec

    def test_events_at_filters_by_tick(self, trace):
        for tick in range(trace.spec.ticks):
            for event in trace.events_at(tick):
                assert event.tick == tick
        total = sum(len(trace.events_at(t))
                    for t in range(trace.spec.ticks))
        assert total == len(trace.events)

    def test_rejects_out_of_order_events(self, small_spec):
        events = TrafficGenerator(small_spec, seed=5).events()
        assert len(events) >= 2
        with pytest.raises(TrafficError, match="non-decreasing"):
            TrafficTrace(spec=small_spec, seed=5,
                         events=tuple(reversed(events)))

    def test_rejects_events_beyond_horizon(self, small_spec):
        rogue = ArrivalEvent(
            tick=small_spec.ticks, name="user-99999", tier="gold",
            priority=2, windows=2, window_tasks=6,
            app_kind="synthetic", app_seed=5,
        )
        with pytest.raises(TrafficError, match="horizon"):
            TrafficTrace(spec=small_spec, seed=5, events=(rogue,))


class TestPersistence:
    def test_save_load_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.save(path)
        assert TrafficTrace.load(path) == trace

    def test_save_is_byte_deterministic(self, trace, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        trace.save(first)
        trace.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_artifact_is_tagged(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.save(path)
        assert json.loads(path.read_text())["kind"] == TRACE_KIND

    def test_tampered_file_fails_checksum(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.save(path)
        data = json.loads(path.read_text())
        data["seed"] = trace.seed + 1
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError, match="checksum"):
            TrafficTrace.load(path)

    def test_malformed_payload_is_structured_error(
        self, trace, tmp_path
    ):
        from repro.serialization import write_artifact

        path = tmp_path / "trace.json"
        payload = trace.to_payload()
        del payload["events"]
        write_artifact(path, TRACE_KIND, payload)
        with pytest.raises(SerializationError, match="malformed"):
            TrafficTrace.load(path)
