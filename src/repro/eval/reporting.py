"""Regenerate every evaluation artifact as one text report.

``generate_report()`` runs the full paper-scale evaluation (all tables
and figures) and renders them with the same formatters the benchmarks
use; EXPERIMENTS.md embeds its output so the documented numbers always
come from the code.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.eval.experiments import (
    ExperimentScale,
    format_fig1,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table3,
    run_table4,
)


def generate_report(
    scale: Optional[ExperimentScale] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Run every experiment and return the combined text report.

    Args:
        scale: Experiment sizing; defaults to the paper configuration.
        progress: Optional callback invoked with a status line before
            each experiment (e.g. ``print``).
    """
    scale = scale or ExperimentScale.paper()
    sections: List[str] = []

    def section(name: str, producer: Callable[[], str]) -> None:
        if progress is not None:
            progress(f"running {name}...")
        start = time.perf_counter()
        body = producer()
        elapsed = time.perf_counter() - start
        if progress is not None:
            progress(f"{name} done in {elapsed:.1f}s")
        # The report body must be byte-identical across runs (it is
        # embedded in EXPERIMENTS.md and diffed); timing stays on the
        # progress channel.
        sections.append(f"{body}\n[{name}]")

    section("table1", lambda: format_table1(scale))
    section("table2", format_table2)
    section("fig1", lambda: format_fig1(run_fig1(scale)))
    section("table3", lambda: format_table3(run_table3(scale)))
    section("fig4", lambda: format_fig4(run_fig4(scale)))
    section("fig5", lambda: format_fig5(run_fig5(scale)))
    section("fig6", lambda: format_fig6(run_fig6(scale)))
    section("table4", lambda: format_table4(run_table4(scale)))
    section("fig7", lambda: format_fig7(run_fig7(scale)))
    return "\n\n".join(sections)
