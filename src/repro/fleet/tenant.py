"""Fleet-level tenant state: identity that survives shard failures.

A shard's :class:`~repro.serve.tenant.TenantRecord` dies with its
server generation; the :class:`FleetTenant` is the durable identity the
router tracks across placements, migrations, failovers, and shedding.
Window progress accumulates here (a tenant that served 6 of 16 windows
before its shard crashed is re-placed with 10 remaining), and so do the
per-item latency samples the fleet report's percentiles are computed
over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import FleetError
from repro.serve.tenant import (
    COMPLETED,
    FAILED,
    PENDING,
    REJECTED,
    RUNNING,
    TenantSpec,
)

#: Fleet-only terminal state: dropped by priority-ordered shedding when
#: the surviving shards could not absorb a failover batch.
SHED = "shed"

FLEET_TERMINAL_STATES = (COMPLETED, REJECTED, FAILED, SHED)


@dataclass
class FleetTenant:
    """Registry entry: the fleet-side state of one tenant."""

    spec: TenantSpec
    arrival: int
    status: str = PENDING
    status_detail: str = ""
    #: Current shard (None while pending/backlogged or terminal).
    shard: Optional[str] = None
    #: Every shard this tenant ran on, in placement order.
    shard_history: List[str] = field(default_factory=list)
    windows_served: int = 0
    migrations: int = 0
    reschedules: int = 0
    #: Per-item latency samples across all segments and shards.
    samples: List[float] = field(default_factory=list)
    #: Index into ``samples`` where each placement segment starts; the
    #: segment's first window is its slowdown baseline (same convention
    #: as the health monitor's relative SLO).
    segment_starts: List[int] = field(default_factory=list)
    #: Tick the tenant entered the fleet backlog (for patience).
    backlog_since: Optional[int] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def done(self) -> bool:
        return self.status in FLEET_TERMINAL_STATES

    @property
    def windows_remaining(self) -> int:
        return self.spec.windows - self.windows_served

    def pending_spec(self) -> TenantSpec:
        """The spec to (re)admit with: only the unserved windows."""
        if self.windows_served == 0:
            return self.spec
        remaining = self.windows_remaining
        if remaining < 1:
            raise FleetError(
                f"tenant {self.name!r} has no windows remaining"
            )
        return replace(self.spec, windows=remaining)

    def place(self, shard: str) -> None:
        if self.shard_history:
            self.migrations += 1
        self.shard = shard
        self.shard_history.append(shard)
        self.segment_starts.append(len(self.samples))
        self.status = RUNNING
        self.backlog_since = None

    def slowdowns(self) -> List[float]:
        """Each sample's ratio to its placement segment's first-window
        baseline.

        Normalizing per segment factors out *where* the tenant runs
        (app heterogeneity, the PU class a placement handed it) and
        keeps what the fleet is accountable for: how much worse than
        its own baseline each placement let the tenant get.
        """
        out: List[float] = []
        bounds = list(self.segment_starts) + [len(self.samples)]
        for start, end in zip(bounds, bounds[1:]):
            if end <= start:
                continue
            baseline = self.samples[start]
            for sample in self.samples[start:end]:
                out.append(sample / baseline if baseline > 0.0 else 1.0)
        return out
