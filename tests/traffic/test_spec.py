"""TrafficSpec/TierSpec/BurstSpec: validation and dict round-trips."""

import pytest

from repro.errors import ReproError, TrafficError
from repro.traffic import BurstSpec, DEFAULT_TIERS, TierSpec, TrafficSpec


class TestTierSpec:
    def test_rejects_sub_unity_slo(self):
        with pytest.raises(TrafficError, match="slo_slowdown"):
            TierSpec(name="gold", priority=2, weight=1.0,
                     slo_slowdown=0.9)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(TrafficError, match="weight"):
            TierSpec(name="gold", priority=2, weight=0.0,
                     slo_slowdown=1.2)

    def test_rejects_tiny_window(self):
        with pytest.raises(TrafficError, match="window_tasks"):
            TierSpec(name="gold", priority=2, weight=1.0,
                     slo_slowdown=1.2, window_tasks=1)


class TestBurstSpec:
    def test_half_open_interval(self):
        burst = BurstSpec(start_tick=4, end_tick=8, multiplier=2.0)
        assert not burst.active_at(3)
        assert burst.active_at(4)
        assert burst.active_at(7)
        assert not burst.active_at(8)

    def test_rejects_empty_interval(self):
        with pytest.raises(TrafficError, match="end_tick"):
            BurstSpec(start_tick=4, end_tick=4, multiplier=2.0)


class TestTrafficSpec:
    def test_defaults_are_valid(self):
        spec = TrafficSpec()
        assert spec.tiers == DEFAULT_TIERS

    @pytest.mark.parametrize("kwargs,match", [
        ({"ticks": 0}, "ticks"),
        ({"arrival_process": "bursty"}, "arrival process"),
        ({"arrivals_per_tick": 0.0}, "arrivals_per_tick"),
        ({"load_multiplier": -1.0}, "load_multiplier"),
        ({"diurnal_amplitude": 1.0}, "diurnal_amplitude"),
        ({"mmpp_enter_surge": 1.5}, "mmpp_enter_surge"),
        ({"tiers": ()}, "at least one tier"),
        ({"session_windows_min": 5, "session_windows_max": 4},
         "session_windows_max"),
        ({"app_pool_size": 0}, "app_pool_size"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(TrafficError, match=match):
            TrafficSpec(**kwargs)

    def test_rejects_duplicate_tier_names(self):
        tier = TierSpec(name="gold", priority=2, weight=1.0,
                        slo_slowdown=1.2)
        with pytest.raises(TrafficError, match="duplicate"):
            TrafficSpec(tiers=(tier, tier))

    def test_tier_lookup(self, small_spec):
        assert small_spec.tier("gold").priority == 2
        with pytest.raises(TrafficError, match="unknown tier"):
            small_spec.tier("platinum")

    def test_dict_round_trip(self, small_spec):
        clone = TrafficSpec.from_dict(small_spec.to_dict())
        assert clone == small_spec
        assert clone.to_dict() == small_spec.to_dict()

    def test_malformed_dict_is_structured_error(self, small_spec):
        data = small_spec.to_dict()
        del data["tiers"]
        with pytest.raises(TrafficError, match="malformed traffic spec"):
            TrafficSpec.from_dict(data)

    def test_traffic_error_is_repro_error(self):
        with pytest.raises(ReproError):
            TrafficSpec(ticks=0)
