"""DPLL-style search engine with propagation and branch-and-bound.

The engine maintains a trail of assignments and a watch list mapping each
variable to the constraints that mention it, so propagation after a decision
only revisits affected constraints.  It offers:

* :meth:`Solver.solve` - first satisfying assignment (or ``None``).
* :meth:`Solver.enumerate` - lazily yield solutions (optionally bounded).
* :meth:`Solver.minimize` - branch-and-bound over an objective evaluated on
  complete assignments, with an optional admissible lower bound over partial
  assignments for pruning.

The design deliberately mirrors the role z3 plays in the paper: the
BetterTogether optimizer (section 3.3) pushes constraints C1-C5 and objective
O1, asks for an optimum, then repeatedly blocks solutions to enumerate the
K = 20 diverse candidates.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SolverTimeoutError
from repro.solver.constraints import UNASSIGNED, Constraint
from repro.solver.model import Model, Solution

# Objective over a complete assignment (variable values indexed by var index).
ObjectiveFn = Callable[[Sequence[int]], float]
# Admissible lower bound over a partial assignment; must never exceed the
# objective of any completion.  Entries may be UNASSIGNED.
LowerBoundFn = Callable[[Sequence[int]], float]


class SolverStats:
    """Counters describing one solver run."""

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.solutions = 0
        self.wall_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SolverStats(decisions={self.decisions}, "
            f"propagations={self.propagations}, conflicts={self.conflicts}, "
            f"solutions={self.solutions}, wall={self.wall_seconds:.4f}s)"
        )


class Solver:
    """Search engine over a :class:`repro.solver.model.Model`."""

    def __init__(self, model: Model, max_decisions: Optional[int] = None,
                 time_budget_s: Optional[float] = None):
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValueError("time_budget_s must be > 0")
        self.model = model
        self.max_decisions = max_decisions
        self.time_budget_s = time_budget_s
        self._deadline: Optional[float] = None
        self.stats = SolverStats()
        self._watchers: Dict[int, List[Constraint]] = {
            var.index: [] for var in model.variables
        }
        for constraint in model.constraints:
            for var in constraint.variables():
                self._watchers[var.index].append(constraint)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(
        self, values: List[int], trail: List[int], dirty: List[Constraint]
    ) -> bool:
        """Fixpoint propagation.

        Args:
            values: Partial assignment, mutated in place.
            trail: Indices assigned during this propagation episode (appended
                so the caller can undo).
            dirty: Constraints to (re)examine initially.

        Returns:
            False on conflict, True otherwise.
        """
        queue = list(dirty)
        while queue:
            constraint = queue.pop()
            consistent, forced = constraint.propagate(values)
            self.stats.propagations += 1
            if not consistent:
                self.stats.conflicts += 1
                return False
            for index, value in forced:
                current = values[index]
                if current == UNASSIGNED:
                    values[index] = value
                    trail.append(index)
                    queue.extend(self._watchers[index])
                elif current != value:
                    self.stats.conflicts += 1
                    return False
        return True

    def _undo(self, values: List[int], trail: List[int], mark: int) -> None:
        while len(trail) > mark:
            values[trail.pop()] = UNASSIGNED

    def _pick_variable(self, values: Sequence[int]) -> Optional[int]:
        for index, value in enumerate(values):
            if value == UNASSIGNED:
                return index
        return None

    def _make_solution(self, values: Sequence[int]) -> Solution:
        by_name = {var.name: var.index for var in self.model.variables}
        return Solution({i: v for i, v in enumerate(values)}, by_name)

    def _arm_deadline(self, start: float) -> None:
        """Fix the wall-clock deadline for one entry-point invocation."""
        self._deadline = (
            None if self.time_budget_s is None
            else start + self.time_budget_s
        )

    def _check_budget(self) -> None:
        if (
            self.max_decisions is not None
            and self.stats.decisions > self.max_decisions
        ):
            raise SolverTimeoutError(
                f"decision budget exhausted ({self.max_decisions})"
            )
        if (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            raise SolverTimeoutError(
                f"wall-clock budget exhausted ({self.time_budget_s}s)"
            )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def solve(self) -> Optional[Solution]:
        """Return the first satisfying assignment, or ``None``."""
        for solution in self.enumerate(limit=1):
            return solution
        return None

    def enumerate(self, limit: Optional[int] = None) -> Iterator[Solution]:
        """Yield satisfying assignments.

        Solutions are produced in deterministic DFS order (variables branched
        in index order, value 1 tried before 0).
        """
        start = time.perf_counter()
        self._arm_deadline(start)
        values = [UNASSIGNED] * self.model.num_variables
        trail: List[int] = []
        if not self._propagate(values, trail, list(self.model.constraints)):
            self.stats.wall_seconds = time.perf_counter() - start
            return
        emitted = 0
        for solution in self._dfs(values, trail):
            self.stats.solutions += 1
            yield solution
            emitted += 1
            if limit is not None and emitted >= limit:
                break
        self.stats.wall_seconds = time.perf_counter() - start

    def _dfs(self, values: List[int], trail: List[int]) -> Iterator[Solution]:
        branch_var = self._pick_variable(values)
        if branch_var is None:
            yield self._make_solution(values)
            return
        for choice in (1, 0):
            self.stats.decisions += 1
            self._check_budget()
            mark = len(trail)
            values[branch_var] = choice
            trail.append(branch_var)
            if self._propagate(values, trail, self._watchers[branch_var]):
                yield from self._dfs(values, trail)
            self._undo(values, trail, mark)

    def minimize(
        self,
        objective: ObjectiveFn,
        lower_bound: Optional[LowerBoundFn] = None,
    ) -> Optional[Tuple[Solution, float]]:
        """Find an assignment minimizing ``objective``.

        Branch-and-bound: whenever ``lower_bound`` on a partial assignment
        is not better than the incumbent, the subtree is pruned.  Without a
        lower bound this degrades to exhaustive search over satisfying
        assignments, which is exactly how small instances (N <= 9, M <= 4)
        are solved well under the paper's 50 ms/invocation figure.

        Returns:
            ``(solution, value)`` for the optimum, or ``None`` if the model
            is infeasible.
        """
        start = time.perf_counter()
        self._arm_deadline(start)
        values = [UNASSIGNED] * self.model.num_variables
        trail: List[int] = []
        if not self._propagate(values, trail, list(self.model.constraints)):
            self.stats.wall_seconds = time.perf_counter() - start
            return None

        best: List[Optional[Tuple[Solution, float]]] = [None]

        def recurse() -> None:
            incumbent = best[0]
            if (
                incumbent is not None
                and lower_bound is not None
                and lower_bound(values) >= incumbent[1] - 1e-12
            ):
                return
            branch_var = self._pick_variable(values)
            if branch_var is None:
                value = objective(values)
                if incumbent is None or value < incumbent[1] - 1e-12:
                    best[0] = (self._make_solution(values), value)
                    self.stats.solutions += 1
                return
            for choice in (1, 0):
                self.stats.decisions += 1
                self._check_budget()
                mark = len(trail)
                values[branch_var] = choice
                trail.append(branch_var)
                if self._propagate(values, trail, self._watchers[branch_var]):
                    recurse()
                self._undo(values, trail, mark)

        recurse()
        self.stats.wall_seconds = time.perf_counter() - start
        return best[0]

    def maximize(
        self,
        objective: ObjectiveFn,
        upper_bound: Optional[LowerBoundFn] = None,
    ) -> Optional[Tuple[Solution, float]]:
        """Find an assignment maximizing ``objective``.

        Implemented as minimization of the negated objective; an
        optional admissible *upper* bound over partial assignments
        enables pruning (it must never be below the objective of any
        completion).
        """
        negated_bound = None
        if upper_bound is not None:
            negated_bound = lambda values: -upper_bound(values)  # noqa: E731
        result = self.minimize(
            lambda values: -objective(values), lower_bound=negated_bound
        )
        if result is None:
            return None
        solution, value = result
        return solution, -value
