"""Invariant-linter driver: file collection, suppression, reporting.

``python -m repro lint [paths...]`` parses every ``.py`` file under the
given paths (the installed ``repro`` package by default), runs each
registered rule from :mod:`repro.analysis.rules` over the AST, filters
findings through ``# bt-lint: disable=...`` suppression comments, and
renders the result as text or JSON.  ``--strict`` turns any surviving
finding into a non-zero exit, which is how CI gates the tree.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.astcache import (
    AstCache,
    ParsedModule,
    ast_cache,
    legacy_suppression_lines,
    parse_module,
)
from repro.analysis.astcache import (
    parse_suppressions as _parse_tool_suppressions,
)
from repro.analysis.rules import Finding, Rule, all_rules
from repro.errors import AnalysisError

#: The suppression-comment tag this tool honours
#: (``# bt-lint: disable=RULE-ID[,RULE-ID...]``; ``ALL`` disables every
#: rule on that line).
TOOL_TAG = "bt-lint"


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict:
        """JSON-serialisable form of the report."""
        return {
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts,
        }

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number (1-based) -> rule ids suppressed on that line."""
    return legacy_suppression_lines(
        _parse_tool_suppressions(source, TOOL_TAG)
    )


def _is_suppressed(finding: Finding,
                   suppressions: Dict[int, Set[str]]) -> bool:
    for lineno in (finding.line, finding.line - 1):
        ids = suppressions.get(lineno)
        if ids and ("ALL" in ids or finding.rule_id in ids):
            return True
    return False


def lint_module(
    module: ParsedModule,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one parsed module; returns (findings, suppressed_count)."""
    path = module.path
    suppressions = legacy_suppression_lines(module.suppressions(TOOL_TAG))
    findings: List[Finding] = []
    suppressed = 0
    for rule in (rules if rules is not None else all_rules()):
        if not rule.applies(path):
            continue
        for finding in rule.check(module.tree, path):
            if _is_suppressed(finding, suppressions):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, suppressed


def lint_source(
    source: str, path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one module's source; returns (findings, suppressed_count).

    Raises:
        AnalysisError: The source does not parse.
    """
    return lint_module(parse_module(source, path), rules=rules)


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files.

    Raises:
        AnalysisError: A path does not exist.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(
                f"analysis target {path} does not exist")
    return files


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[AstCache] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    Parsing goes through the shared :class:`AstCache`, so a ``flow``
    run over the same tree (in either order) reuses every tree.
    """
    cache = cache if cache is not None else ast_cache()
    report = LintReport()
    for file_path in collect_files(paths):
        findings, suppressed = lint_module(cache.get(file_path),
                                           rules=rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    return report


def default_lint_target() -> Path:
    """The installed ``repro`` package directory (the repo baseline)."""
    return Path(__file__).resolve().parent.parent


def changed_files(base: str = "HEAD",
                  repo_root: Optional[Path] = None) -> List[Path]:
    """``.py`` files changed vs ``base`` (``git diff`` + untracked).

    The fast pre-commit path behind ``repro lint --changed`` /
    ``repro flow --changed``: committed, staged, unstaged *and*
    untracked Python files differing from ``base`` are all included,
    as absolute paths.  Deleted files are excluded.

    Raises:
        AnalysisError: Not a git checkout, or ``base`` is unknown.
    """
    root = Path(repo_root) if repo_root is not None else Path.cwd()

    def run_git(*args: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *args], cwd=str(root), capture_output=True,
                text=True,
            )
        except OSError as exc:
            raise AnalysisError(f"cannot run git: {exc}") from exc
        if proc.returncode != 0:
            raise AnalysisError(
                f"git {' '.join(args)} failed: "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        return proc.stdout

    top = Path(run_git("rev-parse", "--show-toplevel").strip())
    names = run_git("diff", "--name-only", base).splitlines()
    names += run_git("ls-files", "--others",
                     "--exclude-standard").splitlines()
    files: List[Path] = []
    for name in sorted(set(names)):
        if not name.endswith(".py"):
            continue
        path = top / name
        if path.is_file():
            files.append(path)
    return files
