"""Correctness tooling for the BT runtime (extension).

PRs 1-2 made the runtime survive faults and crashes; the invariants
they rely on - monotonic deadlines, coordinate-keyed RNG, atomic
artifact writes, single-producer/single-consumer queue discipline,
supervised thread creation - were enforced only by convention.  This
package machine-checks them:

* **Static invariant linter** (:mod:`repro.analysis.linter`,
  ``python -m repro lint``): AST rules over the source tree with a
  rule registry, per-line suppression comments and text/JSON output.
* **Dynamic concurrency checker** (:mod:`repro.analysis.runtime_checks`,
  opt-in via ``REPRO_CHECK=1``, driven by ``python -m repro race``):
  thread-identity binding on :class:`~repro.runtime.spsc.SpscQueue`,
  use-after-release and aliasing checks on TaskObject/UsmBuffer, and a
  lock-order tracker that reports potential deadlock cycles.

Import note: this package must stay import-light - the runtime modules
(`spsc`, `usm`, ...) import :mod:`repro.analysis.runtime_checks` and
:mod:`repro.analysis.lock_order` at module load, so nothing here may
import back into :mod:`repro.runtime` (the ``race`` scenario runner is
loaded lazily by the CLI for exactly this reason).
"""

from repro.analysis.linter import (
    LintReport,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.analysis.lock_order import (
    LockOrderTracker,
    TrackedLock,
    checked_lock,
    lock_tracker,
)
from repro.analysis.report import render_lint_json, render_lint_text
from repro.analysis.rules import Finding, all_rules, get_rule
from repro.analysis.runtime_checks import (
    BUFFER_ALIAS,
    LOCK_ORDER,
    SPSC_CONSUMER,
    SPSC_PRODUCER,
    USE_AFTER_RELEASE,
    Violation,
    ViolationLog,
    checks_enabled,
    collecting,
    disable_checks,
    enable_checks,
    global_log,
    record_violation,
)

__all__ = [
    "BUFFER_ALIAS",
    "Finding",
    "LOCK_ORDER",
    "LintReport",
    "LockOrderTracker",
    "SPSC_CONSUMER",
    "SPSC_PRODUCER",
    "TrackedLock",
    "USE_AFTER_RELEASE",
    "Violation",
    "ViolationLog",
    "all_rules",
    "checked_lock",
    "checks_enabled",
    "collect_files",
    "collecting",
    "disable_checks",
    "enable_checks",
    "get_rule",
    "global_log",
    "lint_paths",
    "lint_source",
    "lock_tracker",
    "record_violation",
    "render_lint_json",
    "render_lint_text",
]
