"""Fleet-level seeded chaos: whole-SoC failure domains.

:mod:`repro.runtime.faults` injects faults at dispatch granularity
(one kernel, one task, one PU).  The fleet's failure domain is the
whole SoC, so this module extends that machinery one level up with
four seeded fault shapes:

* **crash** - the shard's server dies mid-run; every live tenant on it
  is lost at the shard level (the fleet decides whether they fail over);
* **rejoin** - a crashed shard comes back after a delay as a *fresh
  generation* (empty placement, same platform and plan cache);
* **gray failure** - the shard keeps serving but stops heartbeating:
  the health monitor must declare it dead without any crash evidence;
* **degradation** - a partial PU-class brownout, modelled as a
  :class:`~repro.serve.server.DriftSpec` injected into the live shard
  (busy fractions + DRAM demand on the affected classes), which is
  exactly how the serving layer models interference it does not control.

Everything is declared up front in a :class:`ChaosSchedule` (or drawn
from a seed via :meth:`ChaosSchedule.random`), so a chaos run is a pure
function of (platform set, tenant specs, chaos schedule, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import FleetError
from repro.obs.metrics import metrics
from repro.obs.recorder import recorder
from repro.obs.tracer import tracer
from repro.runtime.faults import (
    DEGRADE_END,
    DEGRADE_START,
    GRAY_END,
    GRAY_START,
    SOC_CRASH,
    SOC_REJOIN,
)


@dataclass(frozen=True)
class ShardCrashSpec:
    """Kill one shard at ``at_tick``; optionally rejoin later.

    A rejoined shard is a fresh server generation: its placement is
    empty, its tenant registry forgotten - only the platform and the
    shared plan cache survive the crash.
    """

    shard: str
    at_tick: int
    rejoin_tick: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_tick < 0:
            raise FleetError("crash at_tick must be >= 0")
        if self.rejoin_tick is not None and self.rejoin_tick <= self.at_tick:
            raise FleetError("rejoin_tick must be > at_tick")


@dataclass(frozen=True)
class GrayFailureSpec:
    """Suppress the shard's heartbeat over [start_tick, end_tick) while
    it keeps serving - the classic gray failure the health monitor must
    call dead without a crash to point at."""

    shard: str
    start_tick: int
    end_tick: int

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise FleetError("gray start_tick must be >= 0")
        if self.end_tick <= self.start_tick:
            raise FleetError("gray end_tick must be > start_tick")

    def active_at(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick


@dataclass(frozen=True)
class DegradeSpec:
    """Partial PU-class brownout on one shard over a tick range.

    ``busy`` maps PU class -> stolen busy fraction (thermal throttling,
    a co-resident process); ``demand_gbps`` adds DRAM pressure.  Applied
    to the live shard as an injected drift, so the shard's own
    rescheduler reacts first and the fleet's SLO-breach failover is the
    second line of defence.
    """

    shard: str
    start_tick: int
    busy: Mapping[str, float] = field(default_factory=dict)
    demand_gbps: float = 0.0
    end_tick: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise FleetError("degrade start_tick must be >= 0")
        if self.end_tick is not None and self.end_tick <= self.start_tick:
            raise FleetError("degrade end_tick must be > start_tick")
        for pu_class, fraction in self.busy.items():
            if not 0.0 < fraction <= 1.0:
                raise FleetError(
                    f"degrade busy fraction for {pu_class!r} must be "
                    "in (0, 1]"
                )


@dataclass
class ChaosSchedule:
    """Everything that will go wrong in one fleet run, declared up
    front."""

    crashes: List[ShardCrashSpec] = field(default_factory=list)
    grays: List[GrayFailureSpec] = field(default_factory=list)
    degradations: List[DegradeSpec] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.crashes or self.grays or self.degradations)

    @property
    def n_events(self) -> int:
        return len(self.crashes) + len(self.grays) + len(self.degradations)

    def __post_init__(self) -> None:
        seen = set()
        for crash in self.crashes:
            if crash.shard in seen:
                raise FleetError(
                    f"shard {crash.shard!r} has multiple crash specs; "
                    "chain them via rejoin_tick instead"
                )
            seen.add(crash.shard)

    @classmethod
    def random(
        cls,
        seed: int,
        shard_names: Sequence[str],
        ticks: int,
        crash_rate: float = 0.0,
        gray_rate: float = 0.0,
        degrade_rate: float = 0.0,
        degrade_busy: float = 0.8,
        degrade_demand_gbps: float = 4.0,
        pu_classes: Sequence[str] = ("big", "medium", "little", "gpu"),
    ) -> "ChaosSchedule":
        """Draw a deterministic schedule: same seed, same chaos, always.

        Each shard independently receives at most one crash (with a
        rejoin halfway to the horizon), one gray window, and one
        degradation window, each with the given probability.
        """
        for name, rate in (("crash_rate", crash_rate),
                           ("gray_rate", gray_rate),
                           ("degrade_rate", degrade_rate)):
            if not 0.0 <= rate <= 1.0:
                raise FleetError(f"{name} must be in [0, 1]")
        if ticks < 8:
            raise FleetError("random chaos needs a horizon of >= 8 ticks")
        rng = np.random.default_rng(seed)
        schedule = cls()
        for shard in shard_names:
            if rng.random() < crash_rate:
                at = int(rng.integers(2, max(3, ticks // 2)))
                schedule.crashes.append(ShardCrashSpec(
                    shard=shard, at_tick=at,
                    rejoin_tick=at + max(2, (ticks - at) // 2),
                ))
            if rng.random() < gray_rate:
                start = int(rng.integers(2, max(3, ticks // 2)))
                schedule.grays.append(GrayFailureSpec(
                    shard=shard, start_tick=start,
                    end_tick=start + max(4, ticks // 4),
                ))
            if rng.random() < degrade_rate:
                start = int(rng.integers(2, max(3, ticks // 2)))
                schedule.degradations.append(DegradeSpec(
                    shard=shard, start_tick=start,
                    end_tick=start + max(4, ticks // 3),
                    busy={cls_: degrade_busy for cls_ in pu_classes},
                    demand_gbps=degrade_demand_gbps,
                ))
        return schedule


class ChaosInjector:
    """Evaluates a :class:`ChaosSchedule` at fleet ticks and logs events.

    Single-threaded by design: only the fleet loop thread calls in, so
    the event log order is a pure function of the schedule.  The seeded
    RNG backs anything downstream that needs randomness tied to the
    chaos stream (e.g. :meth:`ChaosSchedule.random` regeneration or
    future probabilistic faults) without touching global state.
    """

    def __init__(self, schedule: ChaosSchedule, seed: int = 0):
        self.schedule = schedule
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.events: List[Dict[str, Any]] = []
        self._degrade_ends: List[DegradeSpec] = []

    # -- logging (mirrors FaultInjector.record one level up) -----------
    def record(self, tick: int, kind: str, shard: str,
               detail: str = "") -> None:
        """Append one chaos event to the log and the obs spine."""
        self.events.append({
            "tick": tick, "kind": kind, "shard": shard, "detail": detail,
        })
        trc = tracer()
        if trc.enabled:
            trc.instant(f"chaos.{kind}", "fleet",
                        track=f"shard:{shard}", tick=tick, detail=detail)
        rec = recorder()
        if rec.enabled:
            rec.record(f"chaos.{kind}", tick=tick, shard=shard,
                       detail=detail)
        reg = metrics()
        if reg.enabled:
            reg.counter(f"chaos.{kind}")

    # -- schedule queries ----------------------------------------------
    def crashes_at(self, tick: int) -> List[ShardCrashSpec]:
        return [c for c in self.schedule.crashes if c.at_tick == tick]

    def rejoins_at(self, tick: int) -> List[ShardCrashSpec]:
        return [c for c in self.schedule.crashes
                if c.rejoin_tick == tick]

    def gray_active(self, shard: str, tick: int) -> bool:
        return any(g.shard == shard and g.active_at(tick)
                   for g in self.schedule.grays)

    def gray_edges_at(self, tick: int) -> List[GrayFailureSpec]:
        """Gray windows starting or ending exactly at ``tick`` (for the
        event log; activity itself is queried via :meth:`gray_active`)."""
        return [g for g in self.schedule.grays
                if g.start_tick == tick or g.end_tick == tick]

    def degradations_at(self, tick: int) -> List[DegradeSpec]:
        return [d for d in self.schedule.degradations
                if d.start_tick == tick]

    def degrade_ends_at(self, tick: int) -> List[DegradeSpec]:
        return [d for d in self.schedule.degradations
                if d.end_tick == tick]
