"""Seeded traffic-layer violations: an unseeded arrival sampler.

The open-loop contract is that a workload is a pure function of
(spec, seed).  This fixture draws its arrival counts from process
entropy instead of a coordinate-keyed generator, and the draws reach
the serialized ``TrafficReport`` two call-hops later - exactly the
regression the flow analysis must keep out of ``repro.traffic``.
"""

import numpy as np


def sample_arrivals(ticks):
    # Unseeded generator: every run offers a different workload.
    rng = np.random.default_rng()
    return [int(rng.poisson(1.5)) for _ in range(ticks)]


def summarize(ticks):
    # One hop: the tainted draws ride a return value.
    return {"arrivals": sample_arrivals(ticks)}


def evaluate(ticks):
    # FLOW-GLOBAL-RNG: OS-entropy arrival counts land in the report.
    return TrafficReport(per_tick=summarize(ticks))


def burst_deadline(horizon_ticks, drain_window_s):
    # CLOCK-MIX: control-domain ticks added to virtual seconds.
    return horizon_ticks + drain_window_s
