"""Stage 2 of the Octree pipeline: radix sort of Morton codes.

The CPU variant sorts the way an OpenMP host kernel realistically would
(a tuned comparison/radix hybrid - ``np.sort``).  The GPU variant is a
faithful LSD radix sort: for each 4-bit digit it launches a histogram
pass, an exclusive scan of the histogram, and a scatter pass - eight
digits means ~24 kernel launches per sort.  On mobile GPUs those repeated
launches plus the scatter's non-coalesced writes make the GPU *bad* at
sorting, which is exactly the Fig. 1 observation that motivates
heterogeneous pipelining.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import flops_nlogn
from repro.kernels.scan import exclusive_scan_cpu
from repro.soc.workprofile import WorkProfile

#: LSD radix configuration used by the device variant.
DIGIT_BITS = 4
NUM_DIGITS = 30 // DIGIT_BITS + 1  # 30-bit Morton codes -> 8 passes
RADIX = 1 << DIGIT_BITS


def sort_codes_cpu(codes: np.ndarray, sorted_codes: np.ndarray) -> None:
    """Host variant: library sort (introsort-class)."""
    if len(codes) != len(sorted_codes):
        raise KernelError("sort output length mismatch")
    np.copyto(sorted_codes, np.sort(codes, kind="stable"))


def sort_codes_gpu(codes: np.ndarray, sorted_codes: np.ndarray) -> None:
    """Device variant: multi-pass LSD radix sort (histogram/scan/scatter)."""
    if len(codes) != len(sorted_codes):
        raise KernelError("sort output length mismatch")
    keys = codes.astype(np.uint32).copy()
    scratch = np.empty_like(keys)
    for digit in range(NUM_DIGITS):
        shift = np.uint32(digit * DIGIT_BITS)
        buckets = (keys >> shift) & np.uint32(RADIX - 1)
        # Histogram pass.
        histogram = np.bincount(buckets, minlength=RADIX).astype(np.int64)
        # Scan pass (digit offsets).
        offsets = np.empty(RADIX, dtype=np.int64)
        exclusive_scan_cpu(histogram, offsets)
        # Scatter pass - a stable counting-sort permutation.
        order = np.argsort(buckets, kind="stable")
        scratch[:] = keys[order]
        keys, scratch = scratch, keys
        del offsets  # offsets are implicit in the stable argsort scatter
    np.copyto(sorted_codes, keys)


def sort_work_profile(n: int) -> WorkProfile:
    """Work characterization for the sort stage.

    The dominant costs differ per backend and the profile captures the
    *worse* structural properties so each backend's efficiency knob can
    represent its implementation: the GPU pays ``3 * NUM_DIGITS`` launches
    and scatter traffic (modelled as extra bytes and high irregularity);
    the CPU's tuned sort runs near memory speed.
    """
    passes = NUM_DIGITS
    return WorkProfile(
        flops=flops_nlogn(max(n, 2), per_element=4.0),
        # Each radix pass reads and writes the key array once.
        bytes_moved=2.0 * 4.0 * max(n, 1) * (passes / 2.0),
        parallelism=float(max(n // 8, 1)),
        parallel_fraction=1.0,
        divergence=0.35,
        irregularity=0.55,
        cpu_efficiency=0.55,
        gpu_efficiency=0.06,
        gpu_cuda_efficiency=0.5,
        gpu_launches=3 * passes,
    )
