"""Fig. 6: correlation heatmap across all applications and platforms.

(a) BetterTogether (interference table + three-level optimization):
    high correlation everywhere (paper mean 0.92, max 0.99).
(b) Prior work (isolated table + latency-only): noticeably lower,
    especially for the sparse and tree workloads on the Jetson entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.prior_models import isolated_latency_only_candidates
from repro.core.framework import BetterTogether
from repro.core.profiler import ISOLATED, BTProfiler
from repro.eval.experiments.common import (
    APP_LABELS,
    APP_ORDER,
    PLATFORM_LABELS,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
    measure_candidates,
)
from repro.eval.metrics import (
    arithmetic_mean,
    format_table,
    safe_pearson,
)


@dataclass
class Fig6Result:
    """(app, platform) -> Pearson r, for both modeling flows."""

    bettertogether: Dict[Tuple[str, str], float]
    isolated: Dict[Tuple[str, str], float]

    def mean_correlation(self, flow: str) -> float:
        grid = getattr(self, flow)
        return arithmetic_mean(grid.values())

    def bt_mean_exceeds_isolated(self) -> bool:
        return (
            self.mean_correlation("bettertogether")
            > self.mean_correlation("isolated")
        )

    def sparse_tree_gap(self) -> float:
        """Mean BT-minus-isolated correlation gap over the irregular
        workloads (CIFAR-S, Tree) - where the paper's gap is largest."""
        keys = [
            key for key in self.bettertogether
            if key[0] in ("alexnet-sparse", "octree")
        ]
        return arithmetic_mean(
            self.bettertogether[k] - self.isolated[k] for k in keys
        )


def run_fig6(scale: ExperimentScale = None) -> Fig6Result:
    scale = scale or ExperimentScale.paper()
    applications = build_applications(scale)
    bt_grid: Dict[Tuple[str, str], float] = {}
    iso_grid: Dict[Tuple[str, str], float] = {}
    for platform in evaluation_platforms():
        framework = BetterTogether(
            platform, repetitions=scale.repetitions, k=scale.k,
            eval_tasks=scale.eval_tasks,
        )
        profiler = BTProfiler(platform, repetitions=scale.repetitions)
        for app_name in APP_ORDER:
            application = applications[app_name]
            # Flow (a): BetterTogether.
            table = framework.profile(application)
            optimization = framework.optimize(application, table)
            predicted, measured = measure_candidates(
                application, platform, optimization, scale.eval_tasks
            )
            bt_grid[(app_name, platform.name)] = safe_pearson(
                predicted, measured
            )
            # Flow (b): isolated + latency-only.
            iso_table = profiler.profile(application, mode=ISOLATED)
            iso_opt = isolated_latency_only_candidates(
                application, platform, k=scale.k, table=iso_table
            )
            predicted, measured = measure_candidates(
                application, platform, iso_opt, scale.eval_tasks
            )
            iso_grid[(app_name, platform.name)] = safe_pearson(
                predicted, measured
            )
    return Fig6Result(bettertogether=bt_grid, isolated=iso_grid)


def _grid_rows(grid: Dict[Tuple[str, str], float]) -> List[List[str]]:
    platforms = sorted({p for _, p in grid}, key=list(
        PLATFORM_LABELS).index)
    rows = [[""] + [PLATFORM_LABELS[p] for p in platforms] + ["Avg"]]
    for app in APP_ORDER:
        values = [grid[(app, p)] for p in platforms]
        rows.append(
            [APP_LABELS[app]]
            + [f"{v:.4f}" for v in values]
            + [f"{arithmetic_mean(values):.4f}"]
        )
    columns = [
        arithmetic_mean([grid[(app, p)] for app in APP_ORDER])
        for p in platforms
    ]
    rows.append(
        ["Avg"]
        + [f"{v:.4f}" for v in columns]
        + [f"{arithmetic_mean(columns):.4f}"]
    )
    return rows


def format_fig6(result: Fig6Result) -> str:
    parts = [
        "Fig. 6a - BetterTogether correlation heatmap",
        format_table(_grid_rows(result.bettertogether)),
        "",
        "Fig. 6b - isolated table + latency-only (prior work)",
        format_table(_grid_rows(result.isolated)),
        "",
        f"mean r: BT {result.mean_correlation('bettertogether'):.3f} "
        f"(paper 0.92) vs isolated "
        f"{result.mean_correlation('isolated'):.3f} (paper 0.85)",
        f"BT mean exceeds isolated: {result.bt_mean_exceeds_isolated()}",
        f"BT advantage on sparse/tree workloads: "
        f"{result.sparse_tree_gap():+.3f}",
    ]
    return "\n".join(parts)
