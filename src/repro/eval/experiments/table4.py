"""Table 4: the autotuning campaign log for AlexNet-sparse on the Pixel.

Measured and predicted latency for the top-10 candidates; schedule #1 is
the predicted-best, and the paper's measured-best (its #4) beat it by
1.35x - the gain level-3 autotuning delivers on top of the model.

Shape target: the measured-best differs from (or at least never loses
to) the predicted-best, with a tangible autotuning gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.autotuner import AutotuneResult
from repro.core.framework import BetterTogether
from repro.eval.experiments.common import (
    ExperimentScale,
    build_applications,
)
from repro.eval.metrics import format_table
from repro.soc import get_platform


@dataclass
class Table4Result:
    autotune: AutotuneResult
    shown: int
    application: str = "alexnet-sparse"
    platform: str = "pixel7a"

    @property
    def autotuning_gain(self) -> float:
        return self.autotune.autotuning_gain


def run_table4(scale: ExperimentScale = None,
               shown: int = 10,
               app_name: str = "alexnet-sparse",
               platform_name: str = "pixel7a") -> Table4Result:
    scale = scale or ExperimentScale.paper()
    platform = get_platform(platform_name)
    application = build_applications(scale)[app_name]
    framework = BetterTogether(
        platform, repetitions=scale.repetitions, k=scale.k,
        eval_tasks=scale.eval_tasks,
    )
    table = framework.profile(application)
    optimization = framework.optimize(application, table)
    autotune = framework.autotune(application, optimization)
    return Table4Result(
        autotune=autotune,
        shown=min(shown, len(autotune.entries)),
        application=app_name,
        platform=platform_name,
    )


def format_table4(result: Table4Result) -> str:
    entries = result.autotune.entries[: result.shown]
    reference = entries[0]
    rows: List[List[str]] = [
        ["#"] + [str(e.rank + 1) for e in entries],
        ["Measured (ms)"]
        + [f"{e.measured_latency_s * 1e3:.2f}" for e in entries],
        ["Predicted (ms)"]
        + [f"{e.predicted_latency_s * 1e3:.2f}" for e in entries],
        ["Speedup vs #1"]
        + [f"{e.speedup_over(reference):.2f}" for e in entries],
    ]
    best = result.autotune.measured_best
    footer = (
        f"measured best: #{best.rank + 1} "
        f"({best.measured_latency_s * 1e3:.2f} ms); autotuning gain "
        f"{result.autotuning_gain:.2f}x over the predicted-best "
        "(paper: 1.35x)"
    )
    return (
        f"Table 4 - top-{result.shown} autotuning log, "
        f"{result.application} @ {result.platform}\n"
        + format_table(rows) + "\n" + footer
    )
