"""Boolean variables and literals for the constraint solver.

The solver works on boolean decision variables.  A :class:`Literal` is a
variable or its negation; constraints are expressed over literals.  Variables
are created through :meth:`repro.solver.model.Model.new_bool`, which assigns
each one a dense integer index used by the search engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BoolVar:
    """A named boolean decision variable.

    Attributes:
        index: Dense index assigned by the owning model; used by the engine.
        name: Human-readable name, useful in debugging and blocking clauses.
    """

    index: int
    name: str

    def __invert__(self) -> "Literal":
        return Literal(self, negated=True)

    def literal(self) -> "Literal":
        """Return the positive literal for this variable."""
        return Literal(self, negated=False)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BoolVar({self.name})"


@dataclass(frozen=True)
class Literal:
    """A boolean variable or its negation."""

    var: BoolVar
    negated: bool = False

    def __invert__(self) -> "Literal":
        return Literal(self.var, negated=not self.negated)

    def value_under(self, assignment: int) -> bool:
        """Evaluate this literal given the variable's assigned value.

        Args:
            assignment: 0 or 1, the value of ``self.var``.
        """
        truth = bool(assignment)
        return (not truth) if self.negated else truth

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        prefix = "~" if self.negated else ""
        return f"{prefix}{self.var.name}"


def as_literal(item: "BoolVar | Literal") -> Literal:
    """Coerce a variable or literal into a :class:`Literal`."""
    if isinstance(item, BoolVar):
        return item.literal()
    if isinstance(item, Literal):
        return item
    raise TypeError(f"expected BoolVar or Literal, got {type(item).__name__}")
