"""Single-producer single-consumer queue (paper section 3.4).

Dispatcher threads communicate through lightweight SPSC queues passing
TaskObject *pointers* between pipeline chunks.  This implementation is a
fixed-capacity ring buffer: the produce/consume fast paths only touch the
head/tail counters (the lock protects Python-level visibility, standing in
for the C++ version's acquire/release atomics), and both ends support
closing for clean pipeline shutdown.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, List, Optional, Tuple

from repro.analysis import runtime_checks as _checks
from repro.analysis.lock_order import checked_lock
from repro.errors import QueueClosedError
from repro.obs.metrics import metrics

#: Deterministic default names for anonymous queues ("spsc-0", ...).
_QUEUE_IDS = itertools.count()


class SpscQueue:
    """A bounded FIFO for exactly one producer and one consumer thread.

    The single-producer/single-consumer discipline is an *ownership*
    contract, not something the lock enforces: under ``REPRO_CHECK=1``
    the first push binds the producer thread and the first pop binds
    the consumer thread, and any operation from a second thread is
    recorded as a concurrency violation (``close`` is exempt - any
    thread may unwind the pipeline).
    """

    def __init__(self, capacity: int, name: Optional[str] = None):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name if name is not None else f"spsc-{next(_QUEUE_IDS)}"
        self._ring: List[Any] = [None] * (capacity + 1)  # one slot spare
        self._head = 0  # consumer position
        self._tail = 0  # producer position
        self._closed = False
        self._lock = checked_lock(f"{self.name}.lock")
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        # (ident, thread name) bound by the first push / first pop.
        self._producer: Optional[Tuple[int, str]] = None
        self._consumer: Optional[Tuple[int, str]] = None

    # ------------------------------------------------------------------
    def _bind(self, end: str) -> None:
        """Bind/verify the calling thread's ownership of one queue end.

        Called with the queue lock held, so binding is race-free even
        when the violating threads race each other.
        """
        me = (threading.get_ident(), threading.current_thread().name)
        bound = self._producer if end == "producer" else self._consumer
        if bound is None:
            if end == "producer":
                self._producer = me
            else:
                self._consumer = me
            return
        if bound[0] != me[0]:
            kind = (_checks.SPSC_PRODUCER if end == "producer"
                    else _checks.SPSC_CONSUMER)
            _checks.record_violation(
                kind, where=self.name,
                detail=(f"{end} end bound to thread {bound[1]!r} but "
                        f"used from {me[1]!r}"),
            )

    # ------------------------------------------------------------------
    def _size_locked(self) -> int:
        return (self._tail - self._head) % len(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return self._size_locked()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    def push(self, item: Any, timeout: Optional[float] = None) -> None:
        """Enqueue, blocking while full.

        ``timeout`` bounds the *total* wait: the deadline is fixed up
        front, so wakeups that find the queue still full wait only for
        the remainder (a slow-but-live consumer cannot extend it).

        Raises:
            QueueClosedError: The queue was closed.
            TimeoutError: ``timeout`` elapsed while full.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            if _checks.ENABLED:
                self._bind("producer")
            while self._size_locked() >= self.capacity:
                if self._closed:
                    raise QueueClosedError("push to closed queue")
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("SPSC push timed out")
                self._not_full.wait(remaining)
            if self._closed:
                raise QueueClosedError("push to closed queue")
            self._ring[self._tail] = item
            self._tail = (self._tail + 1) % len(self._ring)
            reg = metrics()
            if reg.enabled:
                reg.observe("spsc.queue_depth", self._size_locked())
            self._not_empty.notify()

    def try_push(self, item: Any) -> bool:
        """Non-blocking enqueue; False when full."""
        with self._not_full:
            if _checks.ENABLED:
                self._bind("producer")
            if self._closed:
                raise QueueClosedError("push to closed queue")
            if self._size_locked() >= self.capacity:
                return False
            self._ring[self._tail] = item
            self._tail = (self._tail + 1) % len(self._ring)
            self._not_empty.notify()
            return True

    def pop(self, timeout: Optional[float] = None) -> Any:
        """Dequeue, blocking while empty.

        ``timeout`` bounds the *total* wait (monotonic deadline, as in
        :meth:`push`), not the gap between wakeups.

        Raises:
            QueueClosedError: Closed *and* drained.
            TimeoutError: ``timeout`` elapsed while empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            if _checks.ENABLED:
                self._bind("consumer")
            while self._size_locked() == 0:
                if self._closed:
                    raise QueueClosedError("pop from closed, drained queue")
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("SPSC pop timed out")
                self._not_empty.wait(remaining)
            item = self._ring[self._head]
            self._ring[self._head] = None
            self._head = (self._head + 1) % len(self._ring)
            self._not_full.notify()
            return item

    def try_pop(self) -> Any:
        """Non-blocking dequeue; raises IndexError when empty."""
        with self._not_empty:
            if _checks.ENABLED:
                self._bind("consumer")
            if self._size_locked() == 0:
                if self._closed:
                    raise QueueClosedError("pop from closed, drained queue")
                raise IndexError("queue empty")
            item = self._ring[self._head]
            self._ring[self._head] = None
            self._head = (self._head + 1) % len(self._ring)
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark the stream ended; consumers drain then get
        :class:`QueueClosedError`, producers fail immediately."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
