"""Exporter tests: Chrome/Perfetto trace JSON and the Gantt refit."""

import json

import pytest

from repro.obs import (
    CONTROL,
    VIRTUAL,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    export_gantt,
    write_trace,
)
from repro.runtime.trace import record_span


def traced():
    trc = Tracer(enabled=True)
    with trc.span("solver.optimize", "solver", k=4) as solve_id:
        trc.instant("candidate", "solver", rank=0)
    with trc.span("simulator.run", "runtime") as run_id:
        pass
    trc.emit_virtual_spans(
        [record_span(0, "big", 0, 0.0, 1.0, tenant="t-a"),
         record_span(0, "gpu", 0, 0.5, 1.5, tenant="t-b")],
        total_s=1.5, parent_id=run_id,
    )
    return trc, solve_id, run_id


class TestChromeTrace:
    def test_domains_become_processes(self):
        trc, _, _ = traced()
        payload = chrome_trace(trc.events)
        process_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(process_names) == 2

    def test_one_thread_per_track(self):
        trc, _, _ = traced()
        payload = chrome_trace(trc.events)
        threads = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # control: solver + runtime; virtual: one per tenant/pu pair.
        assert set(threads.values()) == {
            "solver", "runtime", "t-a/big", "t-b/gpu"
        }
        assert all(tid >= 1 for _, tid in threads)

    def test_span_and_instant_phases(self):
        trc, solve_id, _ = traced()
        payload = chrome_trace(trc.events)
        data = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        phases = {e["name"]: e["ph"] for e in data}
        assert phases["solver.optimize"] == "X"
        assert phases["candidate"] == "i"
        instant = next(e for e in data if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"]["parent"] == solve_id

    def test_virtual_times_scale_to_microseconds(self):
        trc, _, _ = traced()
        payload = chrome_trace(trc.events)
        chunk = next(e for e in payload["traceEvents"]
                     if e["name"] == "chunk0/task0")
        assert chunk["ts"] == pytest.approx(0.0)
        assert chunk["dur"] == pytest.approx(1e6)

    def test_parent_links_ride_in_args(self):
        trc, _, run_id = traced()
        payload = chrome_trace(trc.events)
        chunk = next(e for e in payload["traceEvents"]
                     if e["name"] == "chunk0/task0")
        assert chunk["args"]["parent"] == run_id
        assert chunk["args"]["tenant"] == "t-a"

    def test_metrics_snapshot_embedded(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("solver.nodes", 17)
        trc, _, _ = traced()
        payload = chrome_trace(trc.events, reg.snapshot())
        assert payload["otherData"]["metrics"]["counters"] == {
            "solver.nodes": 17
        }
        assert payload["otherData"]["generator"] == "repro.obs"

    def test_export_is_deterministic(self):
        a = json.dumps(chrome_trace(traced()[0].events), sort_keys=True)
        b = json.dumps(chrome_trace(traced()[0].events), sort_keys=True)
        assert a == b

    def test_empty_event_list(self):
        payload = chrome_trace([])
        assert [e["ph"] for e in payload["traceEvents"]] == ["M", "M"]
        json.dumps(payload)


class TestExportGantt:
    def test_virtual_spans_render_with_tenant_sections(self):
        trc, _, _ = traced()
        text = export_gantt(trc.events, width=30)
        assert "tenant t-a:" in text
        assert "tenant t-b:" in text
        assert "chunk 0 big" in text
        assert "chunk 0 gpu" in text

    def test_interleaved_tenants_stay_separated(self):
        trc = Tracer(enabled=True)
        # Windows genuinely interleave in virtual time.
        trc.emit_virtual_spans(
            [record_span(0, "big", 0, 0.0, 1.0, tenant="t-a"),
             record_span(0, "big", 0, 0.5, 1.5, tenant="t-b"),
             record_span(0, "big", 1, 1.0, 2.0, tenant="t-a")],
            total_s=2.0,
        )
        text = export_gantt(trc.events, width=20)
        assert text.index("tenant t-a:") < text.index("tenant t-b:")
        a_rows = text.split("tenant t-b:")[0]
        assert "0" in a_rows and "1" in a_rows

    def test_control_events_do_not_leak_into_chart(self):
        trc = Tracer(enabled=True)
        with trc.span("solver.optimize", "solver"):
            pass
        assert "empty" in export_gantt(trc.events)


class TestEmptyAndZeroEventTracks:
    """Exports must stay well-formed when a capture saw nothing, or
    when a track exists with no renderable events (a fleet-soak tenant
    that never got a window leaves exactly this shape behind)."""

    def test_empty_capture_chrome_trace(self):
        import repro.obs as obs

        with obs.capture() as cap:
            snapshot = cap.metrics.snapshot()
        payload = chrome_trace(cap.events, snapshot)
        assert [e["ph"] for e in payload["traceEvents"]] == ["M", "M"]
        assert payload["otherData"]["metrics"] == snapshot
        json.dumps(payload)

    def test_empty_capture_gantt(self):
        import repro.obs as obs

        with obs.capture() as cap:
            pass
        assert "empty" in export_gantt(cap.events)

    def test_instant_only_track_has_no_spans_but_exports(self):
        # A tenant that never gets a window contributes arrival
        # instants on its tier track and nothing else.
        trc = Tracer(enabled=True)
        trc.instant("traffic.arrival", "traffic",
                    track="tier:gold", tenant="starved")
        payload = chrome_trace(trc.events)
        data = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert [e["ph"] for e in data] == ["i"]
        threads = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "tier:gold" in threads
        json.dumps(payload)

    def test_instant_only_track_gantt_is_empty(self):
        trc = Tracer(enabled=True)
        trc.instant("traffic.arrival", "traffic",
                    track="tier:gold", tenant="starved")
        assert "empty" in export_gantt(trc.events)

    def test_mixed_served_and_starved_tenants(self):
        # One tenant has real windows, the other only an admission
        # instant: the chart renders the served one and the starved
        # tenant simply contributes no rows (no crash, no ghost row).
        trc = Tracer(enabled=True)
        trc.instant("traffic.arrival", "traffic",
                    track="tier:gold", tenant="starved")
        trc.emit_virtual_spans(
            [record_span(0, "big", 0, 0.0, 1.0, tenant="served")],
            total_s=1.0,
        )
        text = export_gantt(trc.events, width=20)
        assert "tenant served:" in text
        assert "starved" not in text
        payload = chrome_trace(trc.events)
        json.dumps(payload)

    def test_empty_metrics_snapshot_embeds(self):
        reg = MetricsRegistry(enabled=True)
        payload = chrome_trace([], reg.snapshot())
        assert "series" not in payload["otherData"]["metrics"]
        json.dumps(payload)


class TestWriteTrace:
    def test_written_file_is_valid_json(self, tmp_path):
        trc, _, _ = traced()
        path = tmp_path / "trace.json"
        write_trace(path, chrome_trace(trc.events))
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in data["traceEvents"])
