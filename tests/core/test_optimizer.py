"""Tests for BT-Optimizer: constraint encoding, optimality, diversity."""

import math

import pytest

from repro.core import Application, Stage
from repro.core.optimizer import BTOptimizer, ScheduleCandidate
from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule, enumerate_schedules
from repro.errors import SchedulingError
from repro.soc import WorkProfile


def make_app(n):
    return Application(
        "app",
        [Stage.model_only(f"s{i}", WorkProfile(flops=1e6, bytes_moved=1e5,
                                               parallelism=8.0))
         for i in range(n)],
    )


def make_table(app, latencies):
    """latencies: dict pu -> list of per-stage times."""
    pus = tuple(latencies)
    entries = {
        (stage, pu): latencies[pu][i]
        for i, stage in enumerate(app.stage_names)
        for pu in pus
    }
    return ProfilingTable(
        application=app.name, platform="test", mode="interference",
        entries=entries, stage_names=app.stage_names, pu_classes=pus,
    )


@pytest.fixture
def simple_case():
    app = make_app(4)
    table = make_table(app, {
        "big": [1.0, 4.0, 2.0, 1.0],
        "gpu": [2.0, 1.0, 1.0, 2.0],
    })
    return app, table


class TestUtilization:
    def test_gapness_optimum_matches_bruteforce(self, simple_case):
        app, table = simple_case
        optimizer = BTOptimizer(app, table)
        best = optimizer.optimize_utilization()
        brute = min(
            s.gapness(app, table)
            for s in enumerate_schedules(app.num_stages, table.pu_classes)
        )
        assert best.gapness_s == pytest.approx(brute)

    def test_homogeneous_has_zero_gapness_when_one_pu(self):
        app = make_app(3)
        table = make_table(app, {"big": [1.0, 2.0, 3.0]})
        best = BTOptimizer(app, table).optimize_utilization()
        assert best.gapness_s == 0.0
        assert best.schedule.assignments == ("big",) * 3

    def test_respects_max_chunk_bound(self, simple_case):
        app, table = simple_case
        optimizer = BTOptimizer(app, table, max_chunk_time_s=4.5)
        best = optimizer.optimize_utilization()
        times = best.schedule.chunk_times(app, table)
        assert max(times.values()) <= 4.5 + 1e-9

    def test_infeasible_chunk_bound_raises(self, simple_case):
        app, table = simple_case
        optimizer = BTOptimizer(app, table, max_chunk_time_s=0.5)
        with pytest.raises(SchedulingError):
            optimizer.optimize_utilization()


class TestLatencyEnumeration:
    def test_first_candidate_is_global_best_within_filter(self,
                                                          simple_case):
        app, table = simple_case
        optimizer = BTOptimizer(app, table, k=5)
        result = optimizer.optimize()
        feasible = [
            s for s in enumerate_schedules(app.num_stages, table.pu_classes)
            if s.gapness(app, table) <= result.gap_threshold_s + 1e-12
        ]
        brute_best = min(s.predicted_latency(app, table) for s in feasible)
        assert result.best.predicted_latency_s == pytest.approx(brute_best)

    def test_candidates_sorted_by_predicted_latency(self, simple_case):
        app, table = simple_case
        result = BTOptimizer(app, table, k=8).optimize()
        latencies = [c.predicted_latency_s for c in result.candidates]
        assert latencies == sorted(latencies)

    def test_candidates_are_distinct(self, simple_case):
        app, table = simple_case
        result = BTOptimizer(app, table, k=10).optimize()
        assignments = {c.schedule.assignments for c in result.candidates}
        assert len(assignments) == len(result.candidates)

    def test_all_candidates_contiguous(self, simple_case):
        app, table = simple_case
        result = BTOptimizer(app, table, k=10).optimize()
        for candidate in result.candidates:
            assert candidate.schedule.is_contiguous()

    def test_fills_with_unfiltered_when_space_small(self):
        """Two PUs, three stages: only 2 + 2*2 = 6 contiguous schedules;
        asking for 6 must deliver all of them even past the gap filter."""
        app = make_app(3)
        table = make_table(app, {
            "big": [1.0, 1.0, 10.0],
            "gpu": [5.0, 5.0, 1.0],
        })
        result = BTOptimizer(app, table, k=6, gap_slack=0.01).optimize()
        assert len(result.candidates) == 6

    def test_stops_when_space_exhausted(self):
        app = make_app(2)
        table = make_table(app, {"big": [1.0, 1.0], "gpu": [1.0, 1.0]})
        # Space: 2 homogeneous + 2 splits = 4 < k.
        result = BTOptimizer(app, table, k=50).optimize()
        assert len(result.candidates) == 4

    def test_k_one(self, simple_case):
        app, table = simple_case
        result = BTOptimizer(app, table, k=1).optimize()
        assert len(result.candidates) == 1

    def test_gap_filter_excludes_unbalanced(self):
        """With zero slack, only gapness-optimal schedules lead the list."""
        app = make_app(4)
        table = make_table(app, {
            "big": [1.0, 1.0, 1.0, 1.0],
            "gpu": [1.0, 1.0, 1.0, 1.0],
        })
        result = BTOptimizer(app, table, k=3, gap_slack=0.0).optimize()
        assert result.candidates[0].gapness_s <= result.gap_threshold_s

    def test_latency_only_mode_via_infinite_slack(self, simple_case):
        app, table = simple_case
        unfiltered = BTOptimizer(app, table, k=1,
                                 gap_slack=math.inf).optimize()
        brute_best = min(
            s.predicted_latency(app, table)
            for s in enumerate_schedules(app.num_stages, table.pu_classes)
        )
        assert unfiltered.best.predicted_latency_s == pytest.approx(
            brute_best
        )


class TestTiers:
    def test_tiers_group_similar_latencies(self):
        candidates = [
            ScheduleCandidate(rank=i,
                              schedule=Schedule.homogeneous(1, "big"),
                              predicted_latency_s=lat, gapness_s=0.0)
            for i, lat in enumerate([10.0, 10.3, 10.5, 17.0, 17.2])
        ]
        from repro.core.optimizer import OptimizationResult
        result = OptimizationResult(
            application="a", platform="p", candidates=candidates,
            gap_threshold_s=1.0, utilization_optimum=None,
        )
        tiers = result.tiers(tolerance=0.06)
        assert [len(t) for t in tiers] == [3, 2]


class TestValidation:
    def test_bad_k(self, simple_case):
        app, table = simple_case
        with pytest.raises(SchedulingError):
            BTOptimizer(app, table, k=0)

    def test_unknown_pu_class(self, simple_case):
        app, table = simple_case
        with pytest.raises(SchedulingError):
            BTOptimizer(app, table, pu_classes=["npu"])

    def test_stage_mismatch(self, simple_case):
        _, table = simple_case
        other = make_app(5)
        with pytest.raises(SchedulingError):
            BTOptimizer(other, table)

    def test_solver_stats_accumulate(self, simple_case):
        app, table = simple_case
        optimizer = BTOptimizer(app, table, k=3)
        result = optimizer.optimize()
        assert result.solver_invocations >= 4  # level 1 + >=3 level 2
        assert result.solver_wall_s > 0
