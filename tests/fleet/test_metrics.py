"""Fleet metrics: per-tenant summaries, slowdown normalization, report."""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.fleet import FleetTenant, FleetTenantMetrics
from repro.fleet.metrics import (
    FleetReport,
    surviving_p95,
    surviving_p95_slowdown,
)
from repro.serve.tenant import COMPLETED, TenantSpec


@pytest.fixture(scope="module")
def app():
    return build_synthetic_application(seed=11, stage_count=2)


def _tenant(app, name="t", status=COMPLETED, arrival=0):
    spec = TenantSpec(name=name, application=app, windows=4,
                      window_tasks=4)
    return FleetTenant(spec=spec, arrival=arrival, status=status)


class TestTenantMetrics:
    def test_zero_window_tenant_renders_na(self, app):
        tenant = _tenant(app, status="rejected")
        payload = FleetTenantMetrics.from_tenant(tenant).to_dict()
        assert payload["windows_served"] == 0
        for key in ("mean_latency_s", "p50_latency_s",
                    "p95_latency_s", "max_latency_s"):
            assert payload[key] == "n/a"

    def test_served_tenant_summarizes_samples(self, app):
        tenant = _tenant(app)
        tenant.place("s0")
        tenant.windows_served = 2
        tenant.samples = [0.010, 0.010, 0.030, 0.030]
        metric = FleetTenantMetrics.from_tenant(tenant)
        assert metric.mean_latency_s == pytest.approx(0.020)
        assert metric.max_latency_s == pytest.approx(0.030)
        assert list(metric.shards) == ["s0"]


class TestSlowdowns:
    def test_each_segment_normalizes_to_its_own_baseline(self, app):
        tenant = _tenant(app)
        tenant.place("s0")
        tenant.samples = [0.010, 0.020]
        tenant.place("s1")  # segment 2 starts at index 2
        tenant.samples += [0.040, 0.080]
        assert tenant.slowdowns() == pytest.approx(
            [1.0, 2.0, 1.0, 2.0]
        )
        assert tenant.migrations == 1

    def test_empty_trailing_segment_is_skipped(self, app):
        tenant = _tenant(app)
        tenant.place("s0")
        tenant.samples = [0.010]
        tenant.place("s1")  # displaced before serving anything there
        assert tenant.slowdowns() == pytest.approx([1.0])

    def test_zero_baseline_degrades_to_unity(self, app):
        tenant = _tenant(app)
        tenant.place("s0")
        tenant.samples = [0.0, 0.5]
        assert tenant.slowdowns() == pytest.approx([1.0, 1.0])


class TestFleetAggregates:
    def test_surviving_percentiles_ignore_casualties(self, app):
        survivor = _tenant(app, name="a")
        survivor.place("s0")
        survivor.samples = [0.010, 0.015]
        survivor.status = COMPLETED
        casualty = _tenant(app, name="b", status="failed", arrival=1)
        casualty.samples = [9.0]
        casualty.status = "failed"
        tenants = {"a": survivor, "b": casualty}
        assert surviving_p95(tenants) < 1.0
        # Slowdowns [1.0, 1.5] -> p95 interpolates the two samples.
        assert surviving_p95_slowdown(tenants) == pytest.approx(1.475)

    def test_no_survivors_yields_zero(self, app):
        casualty = _tenant(app, name="b", status="failed")
        assert surviving_p95({"b": casualty}) == 0.0
        assert surviving_p95_slowdown({"b": casualty}) == 0.0


class TestReportShape:
    def _report(self, tenants):
        return FleetReport(
            seed=7, ticks=3, n_shards=1, failover_enabled=True,
            tenants=tenants, shards={}, timeline=[], chaos_events=[],
            surviving_p95_s=0.0, surviving_p95_slowdown=0.0,
            plan_cache={},
        )

    def test_no_survivors_serializes_na(self, app):
        metric = FleetTenantMetrics.from_tenant(
            _tenant(app, status="failed")
        )
        payload = self._report({"t": metric}).to_dict()
        assert payload["surviving_p95_s"] == "n/a"
        assert payload["surviving_p95_slowdown"] == "n/a"
        assert payload["surviving_tenants"] == 0

    def test_tenants_serialize_sorted(self, app):
        tenants = {
            name: FleetTenantMetrics.from_tenant(
                _tenant(app, name=name)
            )
            for name in ("zeta", "alpha", "mid")
        }
        payload = self._report(tenants).to_dict()
        assert list(payload["tenants"]) == ["alpha", "mid", "zeta"]
