"""Tests for cross-platform deployment migration (framework extension)."""

import pytest

from repro.apps import build_octree_application
from repro.core import BetterTogether
from repro.soc import get_platform


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=10_000)


@pytest.fixture(scope="module")
def jetson_plan(app):
    framework = BetterTogether(
        get_platform("jetson_orin_nano"), repetitions=3, k=6,
        eval_tasks=8,
    )
    return framework.run(app)


class TestMigrate:
    def test_power_mode_flip_reuses_candidates(self, app, jetson_plan):
        """Jetson normal -> 7W mode: same PU classes, so migration only
        re-runs level 3 on the cached candidates."""
        lp = BetterTogether(
            get_platform("jetson_orin_nano_lp"), repetitions=3, k=6,
            eval_tasks=8,
        )
        migrated = lp.migrate(jetson_plan)
        assert migrated.platform.name == "jetson_orin_nano_lp"
        # Candidate log is the original one (no re-profiling happened).
        assert migrated.optimization is jetson_plan.optimization
        # The measured pick is valid for the new platform.
        assert set(migrated.schedule.pu_classes_used) <= set(
            migrated.platform.schedulable_classes()
        )

    def test_migrated_pick_is_measured_best_on_new_platform(
        self, app, jetson_plan
    ):
        lp = BetterTogether(
            get_platform("jetson_orin_nano_lp"), repetitions=3, k=6,
            eval_tasks=8,
        )
        migrated = lp.migrate(jetson_plan)
        measured = [
            e.measured_latency_s for e in migrated.autotune.entries
        ]
        assert migrated.measured_latency_s == min(measured)

    def test_migration_to_richer_platform_keeps_usable_candidates(
        self, app, jetson_plan
    ):
        """Jetson candidates (big/gpu) are schedulable on a Pixel, so
        they migrate - even though a native plan might do better."""
        pixel = BetterTogether(
            get_platform("pixel7a"), repetitions=3, k=6, eval_tasks=8
        )
        migrated = pixel.migrate(jetson_plan)
        assert migrated.optimization is jetson_plan.optimization

    def test_migration_falls_back_to_full_flow_when_pus_missing(self, app):
        """Pixel plans use medium/little cores; the Jetson cannot host
        them, so migration must re-run the whole flow."""
        pixel_plan = BetterTogether(
            get_platform("pixel7a"), repetitions=3, k=6, eval_tasks=8
        ).run(app)
        uses_extra = any(
            pu in ("medium", "little")
            for candidate in pixel_plan.optimization.candidates
            for pu in candidate.schedule.pu_classes_used
        )
        assert uses_extra  # precondition for the fallback path
        jetson = BetterTogether(
            get_platform("jetson_orin_nano"), repetitions=3, k=6,
            eval_tasks=8,
        )
        migrated = jetson.migrate(pixel_plan)
        assert set(migrated.schedule.pu_classes_used) <= {"big", "gpu"}

    def test_original_plan_untouched(self, app, jetson_plan):
        before = jetson_plan.measured_latency_s
        lp = BetterTogether(
            get_platform("jetson_orin_nano_lp"), repetitions=3, k=6,
            eval_tasks=8,
        )
        lp.migrate(jetson_plan)
        assert jetson_plan.measured_latency_s == before
        assert jetson_plan.platform.name == "jetson_orin_nano"
