"""Deterministic fault injection and recovery machinery (extension).

The paper's BT-Implementer (section 3.4) assumes kernels never fail and
queues never wedge.  A production deployment cannot: kernels throw,
stages stall, and PUs drop out (thermal shutdown, driver resets).  This
module supplies

* a seedable, fully deterministic **fault plan** (which faults hit which
  (task, stage, PU) coordinates) shared by both back-ends: the threaded
  executor raises injected exceptions around real kernel dispatch, the
  discrete-event simulator perturbs per-stage costs and PU liveness;
* the **recovery policies** the injected faults exercise: retry with
  exponential backoff for transient kernel faults, per-task quarantine
  so one poisoned task is reported instead of unwinding the pipeline,
  and (via :class:`~repro.runtime.adaptive.AdaptivePipeline`) fallback
  to the best cached candidate avoiding a permanently failed PU;
* a structured :class:`FaultReport` recording every injected fault,
  retry, recovery, quarantine and fallback, surfaced by
  ``python -m repro faultsim``.

Injected faults fire *before* the kernel touches the task's buffers, so
a retried dispatch reproduces the fault-free output bit for bit - the
property the recovery tests assert end to end.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.lock_order import checked_lock
from repro.obs.metrics import metrics
from repro.obs.recorder import recorder
from repro.errors import (
    PipelineError,
    PuFailureError,
    ReproError,
    TransientKernelFault,
)

# Event kinds recorded in the fault log.
KERNEL_FAULT = "kernel-fault"
SLOWDOWN = "slowdown"
PU_DROPOUT = "pu-dropout"
RETRY = "retry"
RECOVERY = "recovery"
QUARANTINE = "quarantine"
FALLBACK = "fallback"
# Recorded by the watchdog (repro.runtime.watchdog), not the injector.
STALL = "stall"
DEADLINE_OVERRUN = "deadline-overrun"
# Fleet-level fault kinds (repro.fleet.chaos extends this registry):
# whole-SoC failure domains rather than per-dispatch faults.
SOC_CRASH = "soc-crash"
SOC_REJOIN = "soc-rejoin"
GRAY_START = "gray-start"
GRAY_END = "gray-end"
DEGRADE_START = "degrade-start"
DEGRADE_END = "degrade-end"

#: TaskObject constant under which a quarantined task carries its failure.
_QUARANTINE_KEY = "fault_quarantine"

# Failure classes returned by :func:`classify_failure`.
FAILURE_TRANSIENT = "transient"
FAILURE_FATAL = "fatal"


def classify_failure(exc: BaseException) -> str:
    """Classify a dispatch failure for the recovery machinery.

    ``transient`` failures are worth retrying and, failing that,
    quarantining: injected kernel faults and anything raised by the
    kernels themselves (a flaky driver, a numerical blow-up in one
    task's data).  ``fatal`` failures are contract or configuration
    bugs - any other :class:`~repro.errors.ReproError` (bad chunk
    cover, closed queues, scope violations) - where retrying the same
    dispatch can only fail the same way, so the pipeline must unwind
    and surface the error.
    """
    if isinstance(exc, TransientKernelFault):
        return FAILURE_TRANSIENT
    if isinstance(exc, ReproError):
        return FAILURE_FATAL
    return FAILURE_TRANSIENT


# ----------------------------------------------------------------------
# Fault specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelFaultSpec:
    """Raise from one stage's kernel dispatch.

    Attributes:
        task_id: Task the fault targets.
        stage_index: Global stage index (0-based over the application).
        fail_attempts: Consecutive dispatch attempts that fail before
            the kernel succeeds; ``None`` makes the fault persistent
            (every attempt fails, so retries cannot save the task).
        pu_class: Restrict the fault to one PU class (``None`` = any).
    """

    task_id: int
    stage_index: int
    fail_attempts: Optional[int] = 1
    pu_class: Optional[str] = None

    def matches(self, pu_class: str, stage_index: int,
                task_id: int) -> bool:
        """True when this fault fires for the given dispatch."""
        return (
            task_id == self.task_id
            and stage_index == self.stage_index
            and (self.pu_class is None or pu_class == self.pu_class)
        )


@dataclass(frozen=True)
class SlowdownSpec:
    """Transiently slow one stage execution (stall when extreme).

    ``factor`` multiplies the stage's simulated work; ``delay_s`` makes
    the threaded dispatcher sleep before dispatching - long enough and
    it trips the executor's queue timeout, which is how wedged-stage
    behaviour is exercised deterministically.
    """

    task_id: int
    stage_index: int
    factor: float = 4.0
    delay_s: float = 0.0
    pu_class: Optional[str] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise PipelineError("slowdown factor must be >= 1")
        if self.delay_s < 0.0:
            raise PipelineError("slowdown delay_s must be >= 0")

    def matches(self, pu_class: str, stage_index: int,
                task_id: int) -> bool:
        """True when this slowdown applies to the given dispatch."""
        return (
            task_id == self.task_id
            and stage_index == self.stage_index
            and (self.pu_class is None or pu_class == self.pu_class)
        )


@dataclass(frozen=True)
class PuDropoutSpec:
    """A PU class dies permanently at task ``after_task``.

    Every dispatch on that PU for task ids >= ``after_task`` raises
    :class:`~repro.errors.PuFailureError`; recovery requires a schedule
    that avoids the PU entirely.
    """

    pu_class: str
    after_task: int = 0

    def __post_init__(self) -> None:
        if self.after_task < 0:
            raise PipelineError("after_task must be >= 0")


@dataclass
class FaultPlan:
    """The full set of faults one run will experience."""

    kernel_faults: List[KernelFaultSpec] = field(default_factory=list)
    slowdowns: List[SlowdownSpec] = field(default_factory=list)
    dropouts: List[PuDropoutSpec] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.kernel_faults or self.slowdowns or self.dropouts)

    @property
    def n_faults(self) -> int:
        return (len(self.kernel_faults) + len(self.slowdowns)
                + len(self.dropouts))

    @classmethod
    def random(
        cls,
        seed: int,
        n_tasks: int,
        n_stages: int,
        kernel_fault_rate: float = 0.0,
        slowdown_rate: float = 0.0,
        fail_attempts: int = 1,
        slowdown_factor: float = 4.0,
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """Draw a deterministic plan: same seed, same faults, always.

        Each (task, stage) coordinate independently receives a transient
        kernel fault with probability ``kernel_fault_rate`` and a
        slowdown with probability ``slowdown_rate``.
        """
        if not 0.0 <= kernel_fault_rate <= 1.0:
            raise PipelineError("kernel_fault_rate must be in [0, 1]")
        if not 0.0 <= slowdown_rate <= 1.0:
            raise PipelineError("slowdown_rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        plan = cls()
        for task_id, stage in itertools.product(range(n_tasks),
                                                range(n_stages)):
            if rng.random() < kernel_fault_rate:
                plan.kernel_faults.append(KernelFaultSpec(
                    task_id=task_id, stage_index=stage,
                    fail_attempts=fail_attempts,
                ))
            if rng.random() < slowdown_rate:
                plan.slowdowns.append(SlowdownSpec(
                    task_id=task_id, stage_index=stage,
                    factor=slowdown_factor, delay_s=delay_s,
                ))
        return plan


# ----------------------------------------------------------------------
# Recovery policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Retry transient kernel faults with exponential backoff.

    Attributes:
        max_attempts: Total dispatch attempts per stage (1 = no retry).
        base_backoff_s: Sleep before the first retry.
        multiplier: Backoff growth factor per further retry.
        max_backoff_s: Backoff ceiling.
        jitter: Symmetric jitter fraction in [0, 1).  A backoff ``b``
            becomes ``b * (1 + jitter * (2u - 1))`` for a uniform draw
            ``u`` in [0, 1) supplied by the caller - dispatchers that
            all failed on the same recovering PU otherwise wake in
            lockstep and stampede it.  Without a draw (``u=None``) the
            backoff stays deterministic-undithered, which keeps policy
            objects usable outside an injector.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.001
    multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PipelineError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise PipelineError("backoff times must be >= 0")
        if self.multiplier < 1.0:
            raise PipelineError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise PipelineError("jitter must be in [0, 1)")

    def backoff_s(self, failures: int,
                  u: Optional[float] = None) -> Optional[float]:
        """Sleep before retrying after ``failures`` failed attempts.

        ``u`` is a uniform [0, 1) draw that dithers the backoff by the
        policy's ``jitter`` fraction; take it from
        :meth:`FaultInjector.backoff_draw` so seeded runs stay
        deterministic.  Returns ``None`` once the attempt budget is
        exhausted.
        """
        if failures >= self.max_attempts:
            return None
        backoff = min(
            self.base_backoff_s * self.multiplier ** (failures - 1),
            self.max_backoff_s,
        )
        if u is not None and self.jitter > 0.0:
            if not 0.0 <= u < 1.0:
                raise PipelineError("jitter draw u must be in [0, 1)")
            backoff *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return backoff


# ----------------------------------------------------------------------
# Event log and report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or recovery action."""

    kind: str
    pu_class: str
    stage_index: int
    task_id: int
    attempt: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the event."""
        return {
            "kind": self.kind, "pu_class": self.pu_class,
            "stage_index": self.stage_index, "task_id": self.task_id,
            "attempt": self.attempt, "detail": self.detail,
        }


@dataclass(frozen=True)
class TaskFailure:
    """A task quarantined after exhausting its recovery budget."""

    task_id: int
    chunk_index: int
    stage_index: int
    pu_class: str
    error: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the failure."""
        return {
            "task_id": self.task_id, "chunk_index": self.chunk_index,
            "stage_index": self.stage_index, "pu_class": self.pu_class,
            "error": self.error,
        }


@dataclass
class FaultReport:
    """Structured log of everything that went wrong and how it ended.

    ``flight_tail`` is the observability flight recorder's buffer at
    report time (:mod:`repro.obs.recorder`): the last N cross-layer
    events before the failure, empty when the recorder is disabled.
    """

    events: Tuple[FaultEvent, ...] = ()
    failures: Tuple[TaskFailure, ...] = ()
    flight_tail: Tuple[Dict[str, Any], ...] = ()

    def count(self, kind: str) -> int:
        """Number of logged events of the given kind."""
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the full report."""
        return {
            "counts": self.counts,
            "events": [event.to_dict() for event in self.events],
            "failures": [failure.to_dict() for failure in self.failures],
            "flight_tail": [dict(entry) for entry in self.flight_tail],
        }

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = ["fault/recovery report:"]
        counts = self.counts
        if not counts and not self.failures:
            lines.append("  no faults injected, no recovery needed")
            return "\n".join(lines)
        for kind in (KERNEL_FAULT, SLOWDOWN, PU_DROPOUT, STALL,
                     DEADLINE_OVERRUN, RETRY, RECOVERY, QUARANTINE,
                     FALLBACK):
            if counts.get(kind):
                lines.append(f"  {kind:>12}: {counts[kind]}")
        for event in self.events:
            where = (f"task {event.task_id} stage {event.stage_index} "
                     f"on {event.pu_class}"
                     if event.task_id >= 0 else event.pu_class)
            suffix = f" ({event.detail})" if event.detail else ""
            lines.append(f"    [{event.kind}] {where}"
                         f" attempt {event.attempt}{suffix}")
        for failure in self.failures:
            lines.append(
                f"  quarantined task {failure.task_id}: stage "
                f"{failure.stage_index} on {failure.pu_class} - "
                f"{failure.error}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The injector both back-ends call into
# ----------------------------------------------------------------------
class FaultInjector:
    """Evaluates a :class:`FaultPlan` at dispatch points and logs events.

    Thread-safe: the threaded back-end calls in from every dispatcher.

    Threaded back-end hooks:
        * :meth:`before_kernel` - called immediately before each kernel
          dispatch attempt; sleeps for slowdowns, raises
          :class:`TransientKernelFault` / :class:`PuFailureError` for
          planned faults.

    Simulated back-end hooks:
        * :meth:`sim_cost_scale` - work multiplier for one (PU, stage,
          task) phase; models transient kernel faults as re-execution
          cost and raises :class:`PuFailureError` on dropout.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self._lock = checked_lock("fault-log.lock")
        self._events: List[FaultEvent] = []
        self._dead_pus: Dict[str, int] = {}
        self._rng = np.random.default_rng(seed)

    def backoff_draw(self) -> float:
        """One uniform [0, 1) draw for retry-backoff jitter.

        Drawn from the injector's own seeded stream (under the event
        lock, since every dispatcher thread calls in), so the jittered
        retry timeline is as reproducible as the fault plan itself.
        """
        with self._lock:
            return float(self._rng.random())

    # -- logging -------------------------------------------------------
    def record(self, kind: str, pu_class: str, stage_index: int,
               task_id: int, attempt: int = 0, detail: str = "") -> None:
        """Append one event to the log (callable by recovery code too)."""
        with self._lock:
            self._events.append(FaultEvent(
                kind=kind, pu_class=pu_class, stage_index=stage_index,
                task_id=task_id, attempt=attempt, detail=detail,
            ))
        rec = recorder()
        if rec.enabled:
            rec.record(kind, pu_class=pu_class, stage_index=stage_index,
                       task_id=task_id, attempt=attempt, detail=detail)
            metrics().counter(f"fault.{kind}")

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self._events)

    @property
    def dead_pus(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._dead_pus))

    def report(
        self, failures: Sequence[TaskFailure] = (),
    ) -> FaultReport:
        """Snapshot the log as a structured report (with the flight
        recorder's tail, when one is capturing)."""
        return FaultReport(events=self.events, failures=tuple(failures),
                           flight_tail=tuple(recorder().tail()))

    # -- threaded back-end --------------------------------------------
    def before_kernel(self, pu_class: str, stage_index: int,
                      task_id: int, attempt: int = 0,
                      sleep=time.sleep) -> None:
        """Fire planned faults for one dispatch attempt.

        Raises:
            PuFailureError: The PU dropped out (persistent).
            TransientKernelFault: A planned kernel fault for this
                attempt (retryable unless the spec is persistent).
        """
        self._check_dropout(pu_class, stage_index, task_id)
        for spec in self.plan.slowdowns:
            if (spec.matches(pu_class, stage_index, task_id)
                    and spec.delay_s > 0.0 and attempt == 0):
                self.record(SLOWDOWN, pu_class, stage_index, task_id,
                            detail=f"delay {spec.delay_s:g}s")
                sleep(spec.delay_s)
        for spec in self.plan.kernel_faults:
            if not spec.matches(pu_class, stage_index, task_id):
                continue
            if spec.fail_attempts is None or attempt < spec.fail_attempts:
                persistent = spec.fail_attempts is None
                self.record(KERNEL_FAULT, pu_class, stage_index, task_id,
                            attempt=attempt,
                            detail="persistent" if persistent
                            else f"transient x{spec.fail_attempts}")
                raise TransientKernelFault(
                    f"injected kernel fault: task {task_id} stage "
                    f"{stage_index} on {pu_class} (attempt {attempt})"
                )

    # -- simulated back-end -------------------------------------------
    def sim_cost_scale(self, pu_class: str, stage_index: int,
                       task_id: int) -> float:
        """Cost multiplier for one simulated (PU, stage, task) phase.

        Transient kernel faults cost their retries' worth of extra
        executions; persistent ones raise (the simulated pipeline cannot
        make progress past them).  Slowdowns multiply the work phase.

        Raises:
            PuFailureError: The PU dropped out at or before this task.
            TransientKernelFault: A persistent kernel fault blocks the
                stage entirely.
        """
        self._check_dropout(pu_class, stage_index, task_id)
        scale = 1.0
        for spec in self.plan.slowdowns:
            if spec.matches(pu_class, stage_index, task_id):
                self.record(SLOWDOWN, pu_class, stage_index, task_id,
                            detail=f"factor {spec.factor:g}")
                scale *= spec.factor
        for spec in self.plan.kernel_faults:
            if not spec.matches(pu_class, stage_index, task_id):
                continue
            if spec.fail_attempts is None:
                self.record(KERNEL_FAULT, pu_class, stage_index, task_id,
                            detail="persistent")
                raise TransientKernelFault(
                    f"injected persistent kernel fault: task {task_id} "
                    f"stage {stage_index} on {pu_class}"
                )
            self.record(KERNEL_FAULT, pu_class, stage_index, task_id,
                        detail=f"transient x{spec.fail_attempts}")
            scale *= 1.0 + spec.fail_attempts
        return scale

    # -- shared --------------------------------------------------------
    def _check_dropout(self, pu_class: str, stage_index: int,
                       task_id: int) -> None:
        for spec in self.plan.dropouts:
            if spec.pu_class != pu_class or task_id < spec.after_task:
                continue
            with self._lock:
                first = pu_class not in self._dead_pus
                if first:
                    self._dead_pus[pu_class] = task_id
            if first:
                self.record(PU_DROPOUT, pu_class, stage_index, task_id,
                            detail=f"dead from task {spec.after_task}")
            raise PuFailureError(
                pu_class,
                f"PU class {pu_class!r} dropped out at task "
                f"{spec.after_task} (dispatching task {task_id})",
            )


# ----------------------------------------------------------------------
# Task quarantine helpers (used by the threaded executor)
# ----------------------------------------------------------------------
def quarantine_task(task, failure: TaskFailure) -> None:
    """Mark a TaskObject as poisoned; downstream chunks pass it through."""
    task.set_constant(_QUARANTINE_KEY, failure)


def task_failure(task) -> Optional[TaskFailure]:
    """The failure a quarantined task carries, or ``None`` if healthy."""
    return task.constants.get(_QUARANTINE_KEY)


def clear_quarantine(task) -> None:
    """Reset the marker when a TaskObject is recycled for a new task."""
    task.set_constant(_QUARANTINE_KEY, None)
