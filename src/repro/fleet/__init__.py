"""repro.fleet: fleet-scale serving with failure domains.

Scales :mod:`repro.serve` out to N virtual SoC shards behind one
interference-aware router, and makes the failure domain explicit: SoCs
crash, go gray, and brown out under seeded chaos; health is judged on
the fleet's logical tick clock; placement is gated by per-shard circuit
breakers; and failover atomically re-places a dead shard's tenants on
the survivors (or sheds, in priority order).  A fleet run is a pure
function of (platform set, tenant specs, chaos schedule, seed) and its
report serializes byte-identically across repeats.
"""

from repro.fleet.chaos import (
    ChaosInjector,
    ChaosSchedule,
    DegradeSpec,
    GrayFailureSpec,
    ShardCrashSpec,
)
from repro.fleet.coordinator import FailoverCoordinator
from repro.fleet.health import (
    BreakerConfig,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)
from repro.fleet.metrics import (
    FleetReport,
    FleetTenantMetrics,
    surviving_p95,
    surviving_p95_slowdown,
)
from repro.fleet.router import FleetConfig, FleetRouter
from repro.fleet.scenario import (
    FleetSoakScenario,
    build_fleet,
    run_fleet_soak,
)
from repro.fleet.shard import ShardSpec, SoCShard
from repro.fleet.tenant import SHED, FleetTenant

__all__ = [
    "BreakerConfig",
    "ChaosInjector",
    "ChaosSchedule",
    "CircuitBreaker",
    "DegradeSpec",
    "FailoverCoordinator",
    "FleetConfig",
    "FleetReport",
    "FleetRouter",
    "FleetSoakScenario",
    "FleetTenant",
    "FleetTenantMetrics",
    "GrayFailureSpec",
    "HealthConfig",
    "HealthMonitor",
    "SHED",
    "ShardCrashSpec",
    "ShardSpec",
    "SoCShard",
    "build_fleet",
    "run_fleet_soak",
    "surviving_p95",
    "surviving_p95_slowdown",
]
