"""Rendering for the correctness-tooling reports (text and JSON).

Shared by ``python -m repro lint`` and ``python -m repro race`` so both
tools emit the same shape of structured report: a ``tool`` tag, result
counts, and a list of individual findings/violations that CI can
consume without scraping human-oriented output.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.flow import FlowReport
from repro.analysis.linter import LintReport
from repro.analysis.rules import all_rules
from repro.analysis.taint import ALL_FLOW_RULES, RULE_SUMMARIES
from repro.analysis.runtime_checks import ViolationLog


def render_lint_text(report: LintReport) -> str:
    """Human-readable lint report (one finding per line + summary)."""
    lines = [finding.format() for finding in report.findings]
    status = "clean" if report.clean else (
        f"{len(report.findings)} finding"
        f"{'s' if len(report.findings) != 1 else ''}"
    )
    lines.append(
        f"repro-lint: {status} "
        f"({report.files_checked} files checked, "
        f"{report.suppressed} suppressed)"
    )
    return "\n".join(lines)


def render_lint_json(report: LintReport) -> Dict[str, Any]:
    """Structured lint report, including the rule catalog."""
    data = report.to_dict()
    data["rules"] = [
        {"rule": rule.rule_id, "summary": rule.summary}
        for rule in all_rules()
    ]
    return data


def render_rule_catalog() -> str:
    """The rule catalog as text (``repro lint --list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}: {rule.summary}")
        if rule.applies_to is not None:
            lines.append(f"    applies to paths matching: "
                         f"{', '.join(rule.applies_to)}")
        if rule.allowed_in:
            lines.append(f"    exempt: {', '.join(rule.allowed_in)}")
    return "\n".join(lines)


def render_flow_text(report: FlowReport) -> str:
    """Human-readable flow report (one finding per line + summary)."""
    lines = [finding.format() for finding in report.findings]
    status = "clean" if report.clean else (
        f"{len(report.findings)} finding"
        f"{'s' if len(report.findings) != 1 else ''}"
    )
    lines.append(
        f"repro-flow: {status} "
        f"({report.files_checked} files checked, "
        f"{report.suppressed} suppressed)"
    )
    return "\n".join(lines)


def render_flow_json(report: FlowReport) -> Dict[str, Any]:
    """Structured flow report, including the flow-rule catalog."""
    data = report.to_dict()
    data["rules"] = [
        {"rule": rule_id, "summary": RULE_SUMMARIES[rule_id]}
        for rule_id in ALL_FLOW_RULES
    ]
    return data


def render_flow_catalog() -> str:
    """The flow-rule catalog as text (``repro flow --list-rules``)."""
    return "\n".join(f"{rule_id}: {RULE_SUMMARIES[rule_id]}"
                     for rule_id in ALL_FLOW_RULES)


def render_race_json(phases: Dict[str, ViolationLog],
                     extra: Dict[str, Any]) -> Dict[str, Any]:
    """Structured race-checker report over named scenario phases."""
    return {
        "tool": "repro-race",
        "phases": {name: log.to_dict() for name, log in phases.items()},
        **extra,
    }


def render_race_text(data: Dict[str, Any]) -> str:
    """Human-readable form of a race-checker report."""
    lines: List[str] = ["repro-race report:"]
    for name, phase in data.get("phases", {}).items():
        total = phase.get("total", 0)
        lines.append(f"  {name}: {total} violation"
                     f"{'s' if total != 1 else ''}")
        for violation in phase.get("violations", []):
            lines.append(
                f"    [{violation['kind']}] {violation['where']} "
                f"({violation['thread']}): {violation['detail']}"
            )
    if "selftest_ok" in data:
        lines.append(
            "  selftest: all seeded violations detected"
            if data["selftest_ok"]
            else f"  selftest FAILED: missing "
                 f"{', '.join(data.get('selftest_missing', []))}"
        )
    lines.append("  verdict: " + data.get("verdict", "unknown"))
    return "\n".join(lines)
