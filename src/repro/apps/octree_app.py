"""The Octree application (paper section 4.1): seven stages following
Karras' construction, mixed regular and irregular computation.

Stage list (and the dependency structure from the paper):

1. Morton Encoding   - regular DOALL map
2. Sort              - radix sort of the codes
3. Duplicate Removal - stream compaction
4. Build Radix Tree  - Karras binary radix tree (depends on 3)
5. Edge Counting     - octree cells per tree node (depends on 4)
6. Prefix Sum        - allocation offsets (depends on 5)
7. Build Octree      - materialize + link cells (depends on 3, 4 and 6)

The non-linear tail (stage 7 reads stages 3, 4 and 6) is expressed as a
:class:`~repro.core.stage.TaskGraph` and linearized by topological sort,
exactly as section 3.1 prescribes.

Buffer layout: all arrays are pre-allocated for ``n_points`` (the paper
pre-allocates scratchpads); the data-dependent unique-code count flows
through the one-element ``unique_count`` buffer and downstream stages
slice their views accordingly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.datasets import point_cloud
from repro.core.stage import Application, Stage, TaskGraph
from repro.errors import KernelError
from repro.kernels import (
    Octree,
    RadixTree,
    build_octree_cpu,
    build_octree_gpu,
    build_radix_tree_cpu,
    build_radix_tree_gpu,
    count_edges_cpu,
    count_edges_gpu,
    edge_count_work_profile,
    exclusive_scan_cpu,
    exclusive_scan_gpu,
    morton_encode_cpu,
    morton_encode_gpu,
    morton_work_profile,
    octree_build_work_profile,
    radix_tree_work_profile,
    scan_work_profile,
    sort_codes_cpu,
    sort_codes_gpu,
    sort_work_profile,
    unique_cpu,
    unique_gpu,
    unique_work_profile,
)
from repro.kernels.base import CPU, GPU

#: Default point-cloud size (a modest indoor LiDAR sweep).
DEFAULT_N_POINTS = 100_000
#: Worst-case octree cells per leaf path (10 Morton levels + root).
MAX_CELLS_PER_LEAF = 11


def _unique_count(task) -> int:
    count = int(np.asarray(task["unique_count"])[0])
    if count < 1:
        raise KernelError("pipeline ran octree stages before unique")
    return count


def _tree_view(task, m: int) -> RadixTree:
    """Zero-copy RadixTree over the task's pre-allocated arrays."""
    internal = max(m - 1, 0)
    return RadixTree(
        left=task["rt_left"][:internal],
        right=task["rt_right"][:internal],
        left_is_leaf=task["rt_left_is_leaf"][:internal],
        right_is_leaf=task["rt_right_is_leaf"][:internal],
        parent=task["rt_parent"][:internal],
        leaf_parent=task["rt_leaf_parent"][:m],
        delta_node=task["rt_delta"][:internal],
        range_left=task["rt_range_left"][:internal],
        range_right=task["rt_range_right"][:internal],
    )


def _octree_view(task) -> Octree:
    return Octree(
        level=task["oc_level"],
        code=task["oc_code"],
        parent=task["oc_parent"],
        children=task["oc_children"],
        num_cells=0,
    )


def _stage_morton(backend_fn):
    def kernel(task):
        backend_fn(task["points"], task["codes"])
    return kernel


def _stage_sort(backend_fn):
    def kernel(task):
        backend_fn(task["codes"], task["sorted_codes"])
    return kernel


def _stage_unique(backend_fn):
    def kernel(task):
        backend_fn(task["sorted_codes"], task["unique_codes"],
                   task["unique_count"])
    return kernel


def _stage_tree(backend_fn):
    def kernel(task):
        m = _unique_count(task)
        backend_fn(task["unique_codes"][:m], _tree_view(task, m))
    return kernel


def _stage_edges(backend_fn):
    def kernel(task):
        m = _unique_count(task)
        backend_fn(_tree_view(task, m), task["edge_counts"][: m - 1])
    return kernel


def _stage_scan(backend_fn):
    def kernel(task):
        m = _unique_count(task)
        backend_fn(task["edge_counts"][: m - 1], task["offsets"][: m - 1])
    return kernel


def _stage_build(backend_fn):
    def kernel(task):
        m = _unique_count(task)
        octree = _octree_view(task)
        backend_fn(
            _tree_view(task, m),
            task["unique_codes"][:m],
            task["edge_counts"][: m - 1],
            task["offsets"][: m - 1],
            octree,
        )
        task["oc_num_cells"][0] = octree.num_cells
    return kernel


def _make_task_factory(n_points: int):
    internal = max(n_points - 1, 1)
    max_cells = MAX_CELLS_PER_LEAF * n_points

    def make_task(seed: int) -> Dict[str, np.ndarray]:
        return {
            "points": point_cloud(seed, n_points),
            "codes": np.zeros(n_points, dtype=np.uint32),
            "sorted_codes": np.zeros(n_points, dtype=np.uint32),
            "unique_codes": np.zeros(n_points, dtype=np.uint32),
            "unique_count": np.zeros(1, dtype=np.int64),
            "rt_left": np.full(internal, -1, dtype=np.int64),
            "rt_right": np.full(internal, -1, dtype=np.int64),
            "rt_left_is_leaf": np.zeros(internal, dtype=bool),
            "rt_right_is_leaf": np.zeros(internal, dtype=bool),
            "rt_parent": np.full(internal, -1, dtype=np.int64),
            "rt_leaf_parent": np.full(n_points, -1, dtype=np.int64),
            "rt_delta": np.zeros(internal, dtype=np.int64),
            "rt_range_left": np.zeros(internal, dtype=np.int64),
            "rt_range_right": np.zeros(internal, dtype=np.int64),
            "edge_counts": np.zeros(internal, dtype=np.int64),
            "offsets": np.zeros(internal, dtype=np.int64),
            "oc_level": np.zeros(max_cells, dtype=np.int64),
            "oc_code": np.zeros(max_cells, dtype=np.uint32),
            "oc_parent": np.full(max_cells, -1, dtype=np.int64),
            "oc_children": np.full((max_cells, 8), -1, dtype=np.int64),
            "oc_num_cells": np.zeros(1, dtype=np.int64),
        }

    return make_task


def validate_octree_task(task) -> None:
    """Structural invariants of a completed octree (test + runtime check)."""
    num_cells = int(np.asarray(task["oc_num_cells"])[0])
    if num_cells < 1:
        raise ValueError("octree has no cells")
    level = np.asarray(task["oc_level"])[:num_cells]
    parent = np.asarray(task["oc_parent"])[:num_cells]
    roots = np.nonzero(parent < 0)[0]
    if len(roots) != 1:
        raise ValueError(f"expected one root, found {len(roots)}")
    if level[roots[0]] != 0:
        raise ValueError("root is not at level 0")
    child_levels = level[parent >= 0]
    parent_levels = level[parent[parent >= 0]]
    if not np.all(child_levels == parent_levels + 1):
        raise ValueError("parent/child levels inconsistent")


def build_octree_application(n_points: int = DEFAULT_N_POINTS) -> Application:
    """Construct the 7-stage Octree application for ``n_points`` inputs."""
    if n_points < 2:
        raise KernelError("octree application needs at least 2 points")
    n = n_points
    graph = TaskGraph()
    graph.add_stage(
        Stage("morton", morton_work_profile(n),
              {CPU: _stage_morton(morton_encode_cpu),
               GPU: _stage_morton(morton_encode_gpu)}),
        deps=(),
    )
    graph.add_stage(
        Stage("sort", sort_work_profile(n),
              {CPU: _stage_sort(sort_codes_cpu),
               GPU: _stage_sort(sort_codes_gpu)}),
        deps=("morton",),
    )
    graph.add_stage(
        Stage("unique", unique_work_profile(n),
              {CPU: _stage_unique(unique_cpu),
               GPU: _stage_unique(unique_gpu)}),
        deps=("sort",),
    )
    graph.add_stage(
        Stage("radix-tree", radix_tree_work_profile(n),
              {CPU: _stage_tree(build_radix_tree_cpu),
               GPU: _stage_tree(build_radix_tree_gpu)}),
        deps=("unique",),
    )
    graph.add_stage(
        Stage("edge-count", edge_count_work_profile(n),
              {CPU: _stage_edges(count_edges_cpu),
               GPU: _stage_edges(count_edges_gpu)}),
        deps=("radix-tree",),
    )
    graph.add_stage(
        Stage("prefix-sum", scan_work_profile(n),
              {CPU: _stage_scan(exclusive_scan_cpu),
               GPU: _stage_scan(exclusive_scan_gpu)}),
        deps=("edge-count",),
    )
    # The paper calls out this stage's multi-way dependency (3, 4, 6).
    graph.add_stage(
        Stage("build-octree", octree_build_work_profile(n),
              {CPU: _stage_build(build_octree_cpu),
               GPU: _stage_build(build_octree_gpu)}),
        deps=("unique", "radix-tree", "prefix-sum"),
    )
    return graph.to_application(
        name="octree",
        make_task=_make_task_factory(n_points),
        validate_task=validate_octree_task,
        description="3D octree construction from point clouds (mixed "
                    "sparse & dense)",
        input_kind="PC",
    )
