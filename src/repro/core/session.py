"""Durable campaigns: checkpoint/resume for the end-to-end BT flow.

A full BetterTogether campaign (profile -> optimize -> autotune) takes
~6 minutes per device per application on real hardware (paper section
3.2).  Out of the box it is all-or-nothing: a crash mid-profiling, a
wedged dispatcher or a power loss discards everything collected so far.
:class:`CampaignSession` makes the campaign restartable by checkpointing
every *unit of work* to a session directory as it completes:

* one file per (stage, PU, mode) **profiling cell**,
* the **optimization** candidate log,
* one file per **autotune measurement** (candidate rank),
* the final deployed **schedule**.

Re-running the same session (``python -m repro run --resume <dir>``)
reuses every valid checkpoint and re-executes only the incomplete units.
Because each unit's measurement RNG is keyed by its coordinates alone
(not by collection order), a resumed campaign produces artifacts that
are **byte-identical** to an uninterrupted run's.

All persistence goes through :mod:`repro.serialization`'s atomic,
SHA-256-checksummed writers, so a unit is either fully present and
trustworthy or treated as never written; a corrupted checkpoint is
detected on load, reported, and its unit re-run instead of aborting the
campaign.

Layout of a session directory::

    manifest.json                        campaign identity + parameters
    profiling/<mode>/<stage>__<pu>.json  one cell per (stage, PU, mode)
    optimization.json                    the full candidate log
    autotune/cand_NNN.json               one measurement per candidate
    schedule.json                        the deployed (measured best) schedule
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.autotuner import AutotuneEntry, AutotuneResult, Autotuner
from repro.core.framework import BetterTogether, DeploymentPlan
from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.profiler import INTERFERENCE, ISOLATED, ProfilingTable
from repro.core.schedule import validate_schedule
from repro.core.stage import Application
from repro.errors import CampaignError
from repro.serialization import (
    SerializationError,
    optimization_from_dict,
    optimization_to_dict,
    read_artifact,
    schedule_to_dict,
    write_artifact,
)

#: Callback invoked after each completed unit of work with a label like
#: ``"profile:interference:sort:gpu"`` or ``"autotune:3"``.  Used by the
#: CLI for progress and by the crash tests to kill mid-campaign.
UnitCallback = Callable[[str], None]

_MANIFEST = "manifest.json"
_OPTIMIZATION = "optimization.json"
_SCHEDULE = "schedule.json"


def _safe_name(name: str) -> str:
    """File-system-safe rendering of a stage/PU name."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


@dataclass
class SessionReport:
    """What a campaign run reused, re-measured and repaired."""

    cells_reused: int = 0
    cells_measured: int = 0
    corrupt_units: List[str] = field(default_factory=list)
    optimization_reused: bool = False
    measurements_reused: int = 0
    measurements_run: int = 0
    events: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Append one free-form event line to the session log."""
        self.events.append(message)

    @property
    def units_reused(self) -> int:
        return (self.cells_reused + self.measurements_reused
                + (1 if self.optimization_reused else 0))

    def format(self) -> str:
        """Human-readable resume summary."""
        lines = [
            "campaign session:",
            f"  profiling cells: {self.cells_reused} reused, "
            f"{self.cells_measured} measured",
            f"  optimization: "
            f"{'reused' if self.optimization_reused else 'computed'}",
            f"  autotune measurements: {self.measurements_reused} "
            f"reused, {self.measurements_run} run",
        ]
        if self.corrupt_units:
            lines.append(
                f"  corrupt checkpoints repaired: "
                f"{len(self.corrupt_units)}"
            )
            for unit in self.corrupt_units:
                lines.append(f"    - {unit}")
        return "\n".join(lines)


class CampaignSession:
    """Checkpointed execution of a BetterTogether campaign.

    Args:
        directory: Session directory (created if missing).  Re-running
            with the same directory resumes: every valid checkpoint is
            reused, incomplete or corrupted units are re-executed.
        framework: The configured :class:`BetterTogether` driver whose
            parameters (repetitions, k, gap slack, eval tasks...) define
            the campaign.  A resumed session must be configured
            identically - a mismatch raises :class:`CampaignError`
            instead of silently mixing artifacts.
    """

    def __init__(self, directory, framework: BetterTogether):
        self.directory = Path(directory)
        self.framework = framework
        self.report = SessionReport()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _manifest_payload(self, application: Application) -> Dict[str, Any]:
        framework = self.framework
        return {
            "application": application.name,
            "platform": framework.platform.name,
            "repetitions": framework.profiler.repetitions,
            "k": framework.k,
            "gap_slack": framework.gap_slack,
            "autotune_top": framework.autotune_top,
            "eval_tasks": framework.eval_tasks,
            "time_budget_s": framework.time_budget_s,
        }

    def _check_manifest(self, application: Application) -> None:
        path = self.directory / _MANIFEST
        expected = self._manifest_payload(application)
        if path.exists():
            try:
                data = read_artifact(path, kind="session_manifest")
            except SerializationError as exc:
                # The manifest is derived state: repairable, not fatal.
                self.report.corrupt_units.append(f"manifest ({exc})")
                self.report.note(f"rewriting corrupt manifest: {exc}")
            else:
                found = {key: data.get(key) for key in expected}
                if found != expected:
                    diffs = ", ".join(
                        f"{key}: expected {expected[key]!r}, "
                        f"found {found[key]!r}"
                        for key in expected if found[key] != expected[key]
                    )
                    raise CampaignError(
                        f"session {self.directory} was started with "
                        f"different parameters ({diffs}); resume with "
                        "the original configuration or use a fresh "
                        "directory"
                    )
                return
        self.directory.mkdir(parents=True, exist_ok=True)
        write_artifact(path, "session_manifest", expected)

    # ------------------------------------------------------------------
    # Phase 1: profiling, one cell at a time
    # ------------------------------------------------------------------
    def _cell_path(self, mode: str, stage: str, pu_class: str) -> Path:
        return (self.directory / "profiling" / _safe_name(mode)
                / f"{_safe_name(stage)}__{_safe_name(pu_class)}.json")

    def _load_cell(
        self, application: Application, mode: str, stage: str,
        pu_class: str,
    ) -> Optional[Tuple[float, float]]:
        """A previously checkpointed cell, or ``None`` to (re-)measure."""
        path = self._cell_path(mode, stage, pu_class)
        if not path.exists():
            return None
        try:
            data = read_artifact(path, kind="profiling_cell")
            coords = (data["application"], data["platform"],
                      data["mode"], data["stage"], data["pu_class"])
            if coords != (application.name,
                          self.framework.platform.name,
                          mode, stage, pu_class):
                raise SerializationError(
                    f"{path}: cell coordinates {coords} do not match "
                    "their location in the session"
                )
            return float(data["mean_s"]), float(data["stddev_s"])
        except (SerializationError, KeyError, TypeError,
                ValueError) as exc:
            unit = f"profile:{mode}:{stage}:{pu_class}"
            self.report.corrupt_units.append(f"{unit} ({exc})")
            self.report.note(f"re-measuring corrupt cell {unit}: {exc}")
            return None

    def profile(
        self, application: Application, mode: str = INTERFERENCE,
        on_unit: Optional[UnitCallback] = None,
    ) -> ProfilingTable:
        """Collect (or resume) one profiling table, cell by cell."""
        self._check_manifest(application)
        profiler = self.framework.profiler
        pu_classes = self.framework.platform.pu_classes()
        entries: Dict[Tuple[str, str], float] = {}
        stddevs: Dict[Tuple[str, str], float] = {}
        for stage in application.stage_names:
            for pu_class in pu_classes:
                cached = self._load_cell(application, mode, stage,
                                         pu_class)
                if cached is not None:
                    mean, std = cached
                    self.report.cells_reused += 1
                else:
                    mean, std = profiler.measure_cell(
                        application, stage, pu_class, mode
                    )
                    path = self._cell_path(mode, stage, pu_class)
                    path.parent.mkdir(parents=True, exist_ok=True)
                    write_artifact(path, "profiling_cell", {
                        "application": application.name,
                        "platform": self.framework.platform.name,
                        "mode": mode,
                        "stage": stage,
                        "pu_class": pu_class,
                        "mean_s": mean,
                        "stddev_s": std,
                    })
                    self.report.cells_measured += 1
                entries[(stage, pu_class)] = mean
                stddevs[(stage, pu_class)] = std
                if on_unit is not None:
                    on_unit(f"profile:{mode}:{stage}:{pu_class}")
        return ProfilingTable(
            application=application.name,
            platform=self.framework.platform.name,
            mode=mode,
            entries=entries,
            stage_names=application.stage_names,
            pu_classes=pu_classes,
            stddevs=stddevs,
        )

    def profile_both(
        self, application: Application,
        on_unit: Optional[UnitCallback] = None,
    ) -> Tuple[ProfilingTable, ProfilingTable]:
        """Checkpointed (isolated, interference) pair (Fig. 7 input)."""
        return (
            self.profile(application, mode=ISOLATED, on_unit=on_unit),
            self.profile(application, mode=INTERFERENCE,
                         on_unit=on_unit),
        )

    # ------------------------------------------------------------------
    # Phase 2: optimization (one unit - the candidate log)
    # ------------------------------------------------------------------
    def optimize(
        self, application: Application, table: ProfilingTable,
        on_unit: Optional[UnitCallback] = None,
    ) -> OptimizationResult:
        """Load the checkpointed candidate log or compute and persist it."""
        path = self.directory / _OPTIMIZATION
        if path.exists():
            try:
                data = read_artifact(path, kind="optimization_result")
                result = optimization_from_dict(data, path=path)
                if (result.application != application.name
                        or result.platform
                        != self.framework.platform.name):
                    raise SerializationError(
                        f"{path}: candidate log belongs to "
                        f"({result.application!r}, {result.platform!r})"
                    )
                self.report.optimization_reused = True
                if on_unit is not None:
                    on_unit("optimize")
                return result
            except SerializationError as exc:
                self.report.corrupt_units.append(f"optimize ({exc})")
                self.report.note(
                    f"re-running corrupt optimization: {exc}"
                )
        result = self.framework.optimize(application, table)
        write_artifact(path, "optimization_result",
                       _strip_tag(optimization_to_dict(result)))
        if on_unit is not None:
            on_unit("optimize")
        return result

    # ------------------------------------------------------------------
    # Phase 3: autotuning, one candidate at a time
    # ------------------------------------------------------------------
    def _measurement_path(self, rank: int) -> Path:
        return self.directory / "autotune" / f"cand_{rank:03d}.json"

    def _load_measurement(
        self, candidate: ScheduleCandidate,
    ) -> Optional[float]:
        path = self._measurement_path(candidate.rank)
        if not path.exists():
            return None
        try:
            data = read_artifact(path, kind="autotune_measurement")
            if (int(data["rank"]) != candidate.rank
                    or tuple(data["assignments"])
                    != candidate.schedule.assignments):
                raise SerializationError(
                    f"{path}: measurement does not match candidate "
                    f"#{candidate.rank}'s schedule"
                )
            return float(data["measured_latency_s"])
        except (SerializationError, KeyError, TypeError,
                ValueError) as exc:
            unit = f"autotune:{candidate.rank}"
            self.report.corrupt_units.append(f"{unit} ({exc})")
            self.report.note(
                f"re-measuring corrupt measurement {unit}: {exc}"
            )
            return None

    def autotune(
        self, application: Application,
        optimization: OptimizationResult,
        on_unit: Optional[UnitCallback] = None,
    ) -> AutotuneResult:
        """Measure (or reuse) the top candidates, one checkpoint each."""
        tuner = Autotuner(
            application, self.framework.platform,
            eval_tasks=self.framework.eval_tasks,
        )
        top = self.framework.autotune_top
        candidates = (optimization.candidates[:top] if top is not None
                      else optimization.candidates)
        entries: List[AutotuneEntry] = []
        for candidate in candidates:
            cached = self._load_measurement(candidate)
            if cached is not None:
                entries.append(AutotuneEntry(
                    rank=candidate.rank, candidate=candidate,
                    measured_latency_s=cached,
                ))
                self.report.measurements_reused += 1
            else:
                entry = tuner.measure(candidate)
                path = self._measurement_path(candidate.rank)
                path.parent.mkdir(parents=True, exist_ok=True)
                write_artifact(path, "autotune_measurement", {
                    "application": application.name,
                    "platform": self.framework.platform.name,
                    "rank": candidate.rank,
                    "assignments": list(candidate.schedule.assignments),
                    "predicted_latency_s": candidate.predicted_latency_s,
                    "measured_latency_s": entry.measured_latency_s,
                })
                entries.append(entry)
                self.report.measurements_run += 1
            if on_unit is not None:
                on_unit(f"autotune:{candidate.rank}")
        return AutotuneResult(entries=entries)

    # ------------------------------------------------------------------
    # The end-to-end, resumable campaign
    # ------------------------------------------------------------------
    def run(
        self, application: Application,
        on_unit: Optional[UnitCallback] = None,
    ) -> DeploymentPlan:
        """Run (or resume) the full campaign; idempotent per directory.

        Every completed unit of work is on disk before the next starts,
        so the process can die at any point - SIGKILL included - and a
        re-run picks up from the last completed unit.  A fully
        checkpointed session re-executes nothing.
        """
        table = self.profile(application, mode=INTERFERENCE,
                             on_unit=on_unit)
        optimization = self.optimize(application, table,
                                     on_unit=on_unit)
        autotune = self.autotune(application, optimization,
                                 on_unit=on_unit)
        plan = DeploymentPlan(
            application=application,
            platform=self.framework.platform,
            table=table,
            optimization=optimization,
            autotune=autotune,
        )
        schedule = validate_schedule(
            plan.schedule, application,
            available_pus=self.framework.platform.schedulable_classes(),
        )
        write_artifact(self.directory / _SCHEDULE, "schedule",
                       _strip_tag(schedule_to_dict(schedule)))
        if on_unit is not None:
            on_unit("schedule")
        return plan

    # ------------------------------------------------------------------
    def status(self, application: Application) -> Dict[str, Any]:
        """How much of the campaign is already checkpointed on disk."""
        pu_classes = self.framework.platform.pu_classes()
        total_cells = len(application.stage_names) * len(pu_classes)
        done_cells = sum(
            1
            for stage in application.stage_names
            for pu in pu_classes
            if self._cell_path(INTERFERENCE, stage, pu).exists()
        )
        measured = sorted(
            int(match.group(1))
            for path in (self.directory / "autotune").glob(
                "cand_*.json")
            for match in [re.match(r"cand_(\d+)\.json$", path.name)]
            if match
        ) if (self.directory / "autotune").exists() else []
        return {
            "directory": str(self.directory),
            "manifest": (self.directory / _MANIFEST).exists(),
            "profiling_cells": {"done": done_cells,
                                "total": total_cells},
            "optimization": (self.directory / _OPTIMIZATION).exists(),
            "autotune_measurements": measured,
            "schedule": (self.directory / _SCHEDULE).exists(),
        }


def _strip_tag(data: Dict[str, Any]) -> Dict[str, Any]:
    """Drop kind/version so ``write_artifact`` can re-tag the payload."""
    return {k: v for k, v in data.items() if k not in ("kind", "version")}
