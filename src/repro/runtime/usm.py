"""Unified shared memory buffers (paper section 3.1, ``UsmBuffer``).

The paper targets UMA SoCs: one DRAM pool, one physical address space, so
a buffer allocated once is visible to host and device with zero copies
(``std::pmr::vector`` fronted by ``cudaMallocManaged`` / ``VkBuffer``
allocators in the C++ implementation).  In Python the single numpy array
*is* the unified allocation; ``host_view``/``device_view`` return the same
storage, and the class additionally tracks the coherence hints the real
runtime issues (``cudaStreamAttachMemAsync`` prefetches, Vulkan pipeline
barriers) so tests can assert the dispatcher synchronizes correctly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analysis import runtime_checks as _checks
from repro.errors import PipelineError


class UsmBuffer:
    """A named, pre-allocated unified-memory buffer.

    Args:
        name: Buffer identifier within its TaskObject.
        shape: Numpy shape.
        dtype: Numpy dtype.
        scope: ``unified`` (default), ``host`` or ``device`` - the paper's
            TaskObjects may also contain host- or device-only scratch
            (e.g. GPU radix-sort histograms).  Scoped buffers refuse views
            from the wrong side.
        data: Optional existing array to adopt *zero-copy* as the
            unified allocation (the UMA adoption path); must match
            ``shape`` and ``dtype``.  Without it a fresh zeroed
            allocation is made.
    """

    SCOPES = ("unified", "host", "device")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype,
                 scope: str = "unified",
                 data: Optional[np.ndarray] = None):
        if scope not in self.SCOPES:
            raise PipelineError(f"bad buffer scope {scope!r}")
        self.name = name
        self.scope = scope
        if data is not None:
            if tuple(data.shape) != tuple(shape) \
                    or data.dtype != np.dtype(dtype):
                raise PipelineError(
                    f"buffer {name!r}: adopted array is "
                    f"{data.shape}/{data.dtype}, declared "
                    f"{tuple(shape)}/{np.dtype(dtype)}"
                )
            self._data = data
        else:
            self._data = np.zeros(shape, dtype=dtype)
        self._attach_log: List[str] = []
        self._released = False

    @classmethod
    def wrap(cls, name: str, array: np.ndarray,
             scope: str = "unified") -> "UsmBuffer":
        """Adopt an existing array zero-copy (shares its storage)."""
        array = np.asarray(array)
        return cls(name, tuple(array.shape), array.dtype, scope=scope,
                   data=array)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def host_view(self) -> np.ndarray:
        """The host-side pointer (zero-copy: same storage as the device)."""
        if self.scope == "device":
            raise PipelineError(
                f"buffer {self.name!r} is device-only; no host view"
            )
        self._check_live("host_view")
        return self._data

    def device_view(self) -> np.ndarray:
        """The device-side pointer (same storage - UMA)."""
        if self.scope == "host":
            raise PipelineError(
                f"buffer {self.name!r} is host-only; no device view"
            )
        self._check_live("device_view")
        return self._data

    def view_for(self, pu_class: str) -> np.ndarray:
        """The appropriate view for the executing PU class."""
        return self.device_view() if pu_class == "gpu" else self.host_view()

    # ------------------------------------------------------------------
    def attach_async(self, pu_class: str) -> None:
        """Record a coherence/prefetch hint for the given PU.

        Mirrors ``cudaStreamAttachMemAsync`` (CUDA) / the memory-barrier
        recording into a ``VkCommandBuffer`` (Vulkan) issued by the
        dispatcher before launching a chunk (paper section 3.4).
        """
        self._check_live("attach_async")
        self._attach_log.append(pu_class)

    @property
    def attach_log(self) -> Tuple[str, ...]:
        return tuple(self._attach_log)

    def fill(self, value) -> None:
        """Fill the buffer with a constant."""
        self._check_live("fill")
        self._data.fill(value)

    def zero(self) -> None:
        """Zero the buffer."""
        self._check_live("zero")
        self._data.fill(0)

    # ------------------------------------------------------------------
    # Lifetime (checked by the dynamic concurrency checker)
    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Retire the buffer: any later view/write is a lifetime bug.

        The pipeline executor releases a TaskObject's buffers when the
        task retires; under ``REPRO_CHECK=1`` any subsequent access is
        recorded as a ``use-after-release`` violation.  Idempotent.
        """
        self._released = True

    def _check_live(self, operation: str) -> None:
        if self._released and _checks.ENABLED:
            _checks.record_violation(
                _checks.USE_AFTER_RELEASE,
                where=f"UsmBuffer {self.name!r}",
                detail=f"{operation}() on a released buffer",
            )

    def shares_storage(self, other: "UsmBuffer") -> bool:
        """Whether two buffers alias the same underlying memory."""
        return bool(np.shares_memory(self._data, other._data))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"UsmBuffer({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, scope={self.scope})"
        )
