"""Tests for pipeline memory accounting."""

import pytest

from repro.apps import (
    build_alexnet_sparse,
    build_octree_application,
    build_stereo_application,
)
from repro.core import Application, Stage
from repro.errors import PipelineError
from repro.runtime import estimate_pipeline_memory, max_depth_within
from repro.soc import WorkProfile


class TestEstimate:
    def test_octree_footprint_scales_with_points(self):
        small = estimate_pipeline_memory(
            build_octree_application(n_points=1_000), depth=2
        )
        large = estimate_pipeline_memory(
            build_octree_application(n_points=4_000), depth=2
        )
        assert large.per_task_bytes > 3 * small.per_task_bytes

    def test_total_is_depth_times_per_task(self):
        app = build_octree_application(n_points=2_000)
        one = estimate_pipeline_memory(app, depth=1)
        four = estimate_pipeline_memory(app, depth=4)
        assert four.total_bytes == 4 * one.total_bytes
        assert one.total_mib == pytest.approx(
            one.total_bytes / 1024 / 1024
        )

    def test_largest_buffers_ranked(self):
        app = build_octree_application(n_points=2_000)
        report = estimate_pipeline_memory(app, depth=1)
        top = report.largest_buffers(3)
        assert len(top) == 3
        sizes = [size for _, size in top]
        assert sizes == sorted(sizes, reverse=True)
        # Octree children array (8 pointers/cell) dominates.
        assert top[0][0] == "oc_children"

    def test_sparse_batch_dominated_by_activations(self):
        report = estimate_pipeline_memory(
            build_alexnet_sparse(batch=8), depth=2
        )
        assert report.per_task_bytes > 0
        name, _ = report.largest_buffers(1)[0]
        assert name.startswith("act")

    def test_stereo_dominated_by_cost_volume(self):
        report = estimate_pipeline_memory(
            build_stereo_application(), depth=2
        )
        name, _ = report.largest_buffers(1)[0]
        assert name in ("aggregated", "cost")

    def test_requires_task_factory(self):
        app = Application(
            "bare",
            [Stage.model_only("s", WorkProfile(flops=1, bytes_moved=1))],
        )
        with pytest.raises(PipelineError):
            estimate_pipeline_memory(app, depth=1)

    def test_rejects_bad_depth(self):
        app = build_octree_application(n_points=1_000)
        with pytest.raises(PipelineError):
            estimate_pipeline_memory(app, depth=0)


class TestBudget:
    def test_max_depth_within_budget(self):
        app = build_octree_application(n_points=2_000)
        per_task = estimate_pipeline_memory(app, depth=1).per_task_bytes
        assert max_depth_within(app, 3 * per_task) == 3
        assert max_depth_within(app, per_task - 1) == 0
