"""Schedule analysis and explainability tools.

A scheduler users trust is one they can interrogate.  This module turns
profiling tables and schedules into the reports a performance engineer
actually asks for:

* :func:`stage_affinity_report` - which PU wins each stage and by how
  much (the Fig. 1 view, for any application/platform);
* :func:`explain_schedule` - per-chunk time breakdown, the bottleneck,
  gapness, and the predicted pipelining gain over serial execution;
* :func:`speedup_bounds` - how much speedup is theoretically available
  in a table (best serial vs. ideal-parallel lower bound), a quick test
  of whether pipelining is worth deploying at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.errors import SchedulingError
from repro.eval.metrics import format_table


@dataclass(frozen=True)
class StageAffinity:
    """Per-stage PU ranking."""

    stage: str
    best_pu: str
    worst_pu: str
    spread: float  # worst latency / best latency


def stage_affinity_report(
    application: Application, table: ProfilingTable
) -> List[StageAffinity]:
    """Rank PUs per stage; large spreads are the heterogeneity the
    scheduler exploits."""
    report = []
    for stage in application.stage_names:
        row = table.row(stage)
        best = min(row, key=row.get)
        worst = max(row, key=row.get)
        report.append(
            StageAffinity(
                stage=stage, best_pu=best, worst_pu=worst,
                spread=row[worst] / row[best],
            )
        )
    return report


def format_affinity_report(report: List[StageAffinity]) -> str:
    """Render an affinity report as an aligned text table."""
    rows = [["stage", "best PU", "worst PU", "spread"]]
    for entry in report:
        rows.append([
            entry.stage, entry.best_pu, entry.worst_pu,
            f"{entry.spread:.1f}x",
        ])
    return format_table(rows)


@dataclass
class ScheduleExplanation:
    """Everything the model can say about one schedule."""

    schedule: Schedule
    chunk_rows: List[Tuple[str, str, float, float]]
    bottleneck_chunk: str
    predicted_latency_s: float
    gapness_s: float
    serial_latency_s: float
    pipelining_gain: float


def explain_schedule(
    application: Application,
    schedule: Schedule,
    table: ProfilingTable,
) -> ScheduleExplanation:
    """Decompose a schedule's predicted behaviour chunk by chunk."""
    chunk_times = schedule.chunk_times(application, table)
    rows: List[Tuple[str, str, float, float]] = []
    latency = max(chunk_times.values())
    bottleneck = None
    for chunk, seconds in chunk_times.items():
        names = [application.stages[i].name for i in chunk.stage_indices]
        label = names[0] if len(names) == 1 else f"{names[0]}..{names[-1]}"
        rows.append((label, chunk.pu_class, seconds, seconds / latency))
        if seconds == latency:
            bottleneck = label
    serial = schedule.predicted_serial_latency(application, table)
    return ScheduleExplanation(
        schedule=schedule,
        chunk_rows=rows,
        bottleneck_chunk=bottleneck,
        predicted_latency_s=latency,
        gapness_s=schedule.gapness(application, table),
        serial_latency_s=serial,
        pipelining_gain=serial / latency,
    )


def format_explanation(explanation: ScheduleExplanation) -> str:
    """Render a schedule explanation as text."""
    rows = [["chunk", "PU", "time (ms)", "of bottleneck"]]
    for label, pu, seconds, fraction in explanation.chunk_rows:
        rows.append([
            label, pu, f"{seconds * 1e3:.3f}", f"{fraction * 100:.0f}%",
        ])
    lines = [
        format_table(rows),
        f"bottleneck: {explanation.bottleneck_chunk} "
        f"({explanation.predicted_latency_s * 1e3:.3f} ms); gapness "
        f"{explanation.gapness_s * 1e3:.3f} ms",
        f"serial execution would take "
        f"{explanation.serial_latency_s * 1e3:.3f} ms -> pipelining gain "
        f"{explanation.pipelining_gain:.2f}x",
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class SpeedupBounds:
    """Model-level bounds on what scheduling can achieve.

    Attributes:
        best_serial_s: Best single-PU (homogeneous) latency.
        ideal_parallel_s: Lower bound on any schedule's bottleneck
            (fastest single stage, and per-stage-best work spread over
            all PUs).
        max_speedup: Their ratio - the ceiling on BetterTogether's gain
            for this (application, platform) pair.
    """

    best_serial_s: float
    ideal_parallel_s: float

    @property
    def max_speedup(self) -> float:
        return self.best_serial_s / self.ideal_parallel_s


def speedup_bounds(application: Application,
                   table: ProfilingTable) -> SpeedupBounds:
    """Bound the gain available in a profiling table."""
    if not table.pu_classes:
        raise SchedulingError("table has no PU columns")
    best_serial = min(
        sum(table.latency(stage, pu) for stage in application.stage_names)
        for pu in table.pu_classes
    )
    per_stage_best = [
        min(table.latency(stage, pu) for pu in table.pu_classes)
        for stage in application.stage_names
    ]
    ideal = max(
        max(per_stage_best),
        sum(per_stage_best) / len(table.pu_classes),
    )
    return SpeedupBounds(best_serial_s=best_serial, ideal_parallel_s=ideal)
