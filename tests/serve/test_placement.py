"""PlacementMap invariants: disjoint partitions, rollback, offered load."""

import pytest

from repro.errors import ServeError
from repro.serve import PlacementMap, tenant_offered_load

from tests.serve.conftest import single_class_schedule


@pytest.fixture
def pmap(platform):
    return PlacementMap(platform.schedulable_classes())


class TestAssign:
    def test_grants_the_schedule_classes(self, pmap, plan, app):
        schedule = single_class_schedule(plan, "big")
        granted = pmap.assign("a", app, schedule)
        assert granted == frozenset({"big"})
        assert pmap.partition_of("a") == frozenset({"big"})

    def test_duplicate_tenant_rejected(self, pmap, plan, app):
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        with pytest.raises(ServeError, match="already holds"):
            pmap.assign("a", app, single_class_schedule(plan, "gpu"))

    def test_oversubscription_rejected(self, pmap, plan, app):
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        with pytest.raises(ServeError, match="oversubscribe"):
            pmap.assign("b", app, single_class_schedule(plan, "big"))

    def test_unschedulable_class_rejected(self, plan, app):
        narrow = PlacementMap({"big", "little"})
        with pytest.raises(ServeError, match="unschedulable"):
            narrow.assign("a", app, single_class_schedule(plan, "gpu"))

    def test_free_classes_shrink_and_recover(self, pmap, plan, app,
                                             platform):
        everything = frozenset(platform.schedulable_classes())
        assert pmap.free_classes() == everything
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        assert pmap.free_classes() == everything - {"big"}
        pmap.release("a")
        assert pmap.free_classes() == everything


class TestReassign:
    def test_moves_the_partition(self, pmap, plan, app):
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        granted = pmap.reassign(
            "a", app, single_class_schedule(plan, "medium")
        )
        assert granted == frozenset({"medium"})
        assert pmap.free_classes() >= {"big"}

    def test_failed_reassign_rolls_back(self, pmap, plan, app):
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        pmap.assign("b", app, single_class_schedule(plan, "gpu"))
        with pytest.raises(ServeError, match="oversubscribe"):
            pmap.reassign("a", app, single_class_schedule(plan, "gpu"))
        # The failed move must not have dropped a's original grant.
        assert pmap.partition_of("a") == frozenset({"big"})

    def test_mid_mutation_rollback_leaves_three_tenants_intact(
        self, pmap, plan, app, platform
    ):
        # Three incumbents; the failing reassign is the *middle* of a
        # mutation (c's grant released, new grant refused), so rollback
        # must restore c exactly while never touching a or b.
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        pmap.assign("b", app, single_class_schedule(plan, "gpu"))
        pmap.assign("c", app, single_class_schedule(plan, "medium"))
        before_free = pmap.free_classes()
        with pytest.raises(ServeError, match="oversubscribe"):
            pmap.reassign("c", app, single_class_schedule(plan, "gpu"))
        assert pmap.partition_of("a") == frozenset({"big"})
        assert pmap.partition_of("b") == frozenset({"gpu"})
        assert pmap.partition_of("c") == frozenset({"medium"})
        assert pmap.free_classes() == before_free
        pmap.check()
        # The map is still fully functional after the rollback: c can
        # move to a genuinely free class.
        assert (pmap.reassign("c", app,
                              single_class_schedule(plan, "little"))
                == frozenset({"little"}))
        pmap.check()


class TestReleaseAndCheck:
    def test_release_unknown_tenant(self, pmap):
        with pytest.raises(ServeError, match="holds no placement"):
            pmap.release("ghost")

    def test_check_catches_a_corrupted_map(self, pmap, plan, app):
        pmap.assign("a", app, single_class_schedule(plan, "big"))
        # Simulate a bookkeeping bug the public API cannot produce.
        pmap._partitions["b"] = frozenset({"big"})
        with pytest.raises(ServeError, match="placement invariant"):
            pmap.check()

    def test_empty_schedulable_set_rejected(self):
        with pytest.raises(ServeError, match="no schedulable"):
            PlacementMap([])


class TestOfferedLoad:
    def test_bottleneck_class_is_fully_busy(self, plan, app, platform):
        schedule = plan.optimization.candidates[0].schedule
        load = tenant_offered_load(
            app, plan.isolated, schedule, platform
        )
        assert load.busy
        assert max(load.busy.values()) == pytest.approx(1.0)
        assert all(0.0 < f <= 1.0 for f in load.busy.values())

    def test_only_used_classes_appear(self, plan, app, platform):
        schedule = single_class_schedule(plan, "big")
        load = tenant_offered_load(
            app, plan.isolated, schedule, platform
        )
        assert set(load.busy) == {"big"}
        assert load.demand_gbps >= 0.0
