"""BT-Implementer, functional back-end: real dispatcher threads.

Executes a pipeline schedule with actual Python threads and actual compute
kernels, following the dispatcher protocol of paper section 3.4:

1. pop a TaskObject pointer from the previous queue,
2. synchronize the chunk's buffers for the target PU (coherence hints),
3. dispatch each stage's compute kernel in sequence,
4. yield until the kernels complete (implicit - kernels are synchronous
   here, like OpenMP's implicit barrier),
5. push the pointer to the next queue.

TaskObjects are multi-buffered and recycled through the first queue once
the last chunk finishes with them.  This back-end validates *functional*
correctness of arbitrary schedules (any stage-to-PU mapping must produce
identical outputs); performance numbers come from the discrete-event
back-end in :mod:`repro.runtime.simulator`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.stage import Application, Chunk
from repro.errors import (
    PipelineError,
    PuFailureError,
    QueueClosedError,
    StallError,
)
from repro.runtime.faults import (
    FAILURE_FATAL,
    RECOVERY,
    RETRY,
    QUARANTINE,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    TaskFailure,
    classify_failure,
    clear_quarantine,
    quarantine_task,
    task_failure,
)
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.runtime.spsc import SpscQueue
from repro.runtime.task_object import TaskObject
from repro.runtime.watchdog import Heartbeat, Watchdog, WatchdogConfig

#: Sentinel flowing through the queues to shut dispatchers down.
_POISON = object()

#: Safety timeout so a wedged pipeline fails tests instead of hanging.
_QUEUE_TIMEOUT_S = 30.0


@dataclass
class ThreadedRunResult:
    """Outcome of a threaded pipeline run.

    ``n_tasks`` is the requested task count, ``completed`` the number
    that actually drained from the final queue (they differ only when
    the run raised).  ``failures`` lists tasks quarantined under
    failure isolation; ``fault_events`` is the injector's log when a
    :class:`~repro.runtime.faults.FaultInjector` was attached.
    """

    n_tasks: int
    wall_seconds: float
    chunk_stage_counts: Dict[int, int] = field(default_factory=dict)
    validated: bool = False
    completed: int = 0
    failures: List[TaskFailure] = field(default_factory=list)
    fault_events: Sequence[FaultEvent] = ()
    #: Stall / deadline-overrun events the watchdog recorded (also
    #: mirrored into the fault injector's log when one is attached).
    watchdog_events: Sequence[FaultEvent] = ()

    @property
    def failed_task_ids(self) -> List[int]:
        return [failure.task_id for failure in self.failures]

    @property
    def succeeded(self) -> int:
        """Tasks that completed without quarantine."""
        return self.completed - len(self.failures)


class _Dispatcher(threading.Thread):
    """One long-lived dispatcher thread per pipeline chunk."""

    def __init__(self, chunk_index: int, chunk: Chunk,
                 application: Application, in_queue: SpscQueue,
                 out_queue: SpscQueue, affinity_cores: Sequence[int],
                 queue_timeout_s: float = _QUEUE_TIMEOUT_S,
                 fault_injector: Optional[FaultInjector] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 isolate_failures: bool = False,
                 heartbeat: Optional[Heartbeat] = None):
        super().__init__(name=f"dispatch-{chunk_index}-{chunk.pu_class}",
                         daemon=True)
        self.chunk_index = chunk_index
        self.chunk = chunk
        self.application = application
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.affinity_cores = tuple(affinity_cores)
        self.queue_timeout_s = queue_timeout_s
        self.injector = fault_injector
        self.retry_policy = retry_policy
        self.isolate_failures = isolate_failures
        self.heartbeat = heartbeat
        # Watchdog-cancellable sleep when supervised, plain otherwise;
        # used for injected slowdowns and retry backoff alike.
        self._sleep = heartbeat.sleep if heartbeat is not None else time.sleep
        self.stages_executed = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        # The real implementation calls sched_setaffinity() here; the
        # virtual SoC has no OS scheduler, so the pinning is recorded on
        # the thread for tests to inspect.
        try:
            while True:
                task = self.in_queue.pop(timeout=self.queue_timeout_s)
                if task is _POISON:
                    self.out_queue.push(_POISON,
                                        timeout=self.queue_timeout_s)
                    return
                self._process(task)
                self.out_queue.push(task, timeout=self.queue_timeout_s)
        except QueueClosedError:
            # A neighbour unwound; propagate the closure along the chain
            # so every dispatcher (and the driver) wakes up.
            self.in_queue.close()
            self.out_queue.close()
        except BaseException as exc:  # surfaced by the executor
            self.error = exc
            # Unwind the pipeline so neighbours don't block on us.
            self.in_queue.close()
            self.out_queue.close()

    def _process(self, task: TaskObject) -> None:
        if task_failure(task) is not None:
            return  # quarantined upstream: pass through untouched
        task_id = task.constant("task_index")
        trc = tracer()
        if trc.enabled:
            with trc.span("dispatch.task", "runtime",
                          chunk=self.chunk_index,
                          pu=self.chunk.pu_class, task=task_id):
                self._process_inner(task, task_id)
        else:
            self._process_inner(task, task_id)

    def _process_inner(self, task: TaskObject, task_id: int) -> None:
        if self.heartbeat is not None:
            self.heartbeat.start_task(task_id)
        try:
            task.synchronize_for(self.chunk.pu_class)
            for index in self.chunk.stage_indices:
                if self.heartbeat is not None:
                    self.heartbeat.start_stage(index)
                if not self._dispatch_stage(index, task, task_id):
                    return  # task quarantined; skip its remainder
        finally:
            if self.heartbeat is not None:
                self.heartbeat.idle()

    def _dispatch_stage(self, index: int, task: TaskObject,
                        task_id: int) -> bool:
        """Run one stage's kernel with retry/quarantine handling.

        Returns False when the task was quarantined (failure isolation);
        raises when the failure must unwind the pipeline.  Retries
        assume restartable kernels: injected faults fire before dispatch
        touches the task, so a retried attempt starts from clean state.
        """
        stage = self.application.stages[index]
        kernel = stage.kernel_for_pu(self.chunk.pu_class)
        failures = 0
        while True:
            try:
                if self.injector is not None:
                    self.injector.before_kernel(
                        self.chunk.pu_class, index, task_id,
                        attempt=failures, sleep=self._sleep,
                    )
                kernel(task)
            except PuFailureError:
                raise  # permanent: retrying on a dead PU is pointless
            except StallError as exc:
                # The watchdog cancelled this dispatch.  Never retried:
                # a wedged kernel only wedges again.  Clear the cancel
                # so the next task starts fresh, then quarantine (or
                # unwind when failure isolation is off).
                if self.heartbeat is not None:
                    self.heartbeat.cancel.clear()
                if self.isolate_failures:
                    return self._quarantine(task, task_id, index,
                                            failures + 1, exc)
                raise
            except Exception as exc:
                # Classify before recovering: fatal failures (contract /
                # configuration bugs) would fail identically on retry, so
                # they unwind the pipeline instead of burning the task's
                # recovery budget.
                if classify_failure(exc) == FAILURE_FATAL:
                    raise
                failures += 1
                if self.retry_policy is None:
                    backoff = None
                else:
                    # Jitter the backoff from the injector's seeded
                    # stream: concurrent dispatchers that all failed on
                    # the same recovering PU must not retry in lockstep.
                    draw = (self.injector.backoff_draw()
                            if (self.injector is not None
                                and self.retry_policy.jitter > 0.0)
                            else None)
                    backoff = self.retry_policy.backoff_s(failures,
                                                          u=draw)
                if backoff is None:
                    if self.isolate_failures:
                        return self._quarantine(task, task_id, index,
                                                failures, exc)
                    raise
                self._record_retry(index, task_id, failures, exc)
                try:
                    self._sleep(backoff)
                except StallError as stall:
                    if self.heartbeat is not None:
                        self.heartbeat.cancel.clear()
                    if self.isolate_failures:
                        return self._quarantine(
                            task, task_id, index, failures, stall
                        )
                    raise
                continue
            else:
                self.stages_executed += 1
                if failures and self.injector is not None:
                    self.injector.record(
                        RECOVERY, self.chunk.pu_class, index, task_id,
                        attempt=failures,
                    )
                return True

    def _record_retry(self, index: int, task_id: int, failures: int,
                      exc: BaseException) -> None:
        """Route one retried failure into the fault log (when attached)."""
        if self.injector is not None:
            self.injector.record(
                RETRY, self.chunk.pu_class, index, task_id,
                attempt=failures, detail=repr(exc),
            )
        reg = metrics()
        if reg.enabled:
            reg.counter("retry.count")
        trc = tracer()
        if trc.enabled:
            trc.instant("dispatch.retry", "runtime",
                        chunk=self.chunk_index, task=task_id,
                        stage=index, attempt=failures)

    def _quarantine(self, task: TaskObject, task_id: int, index: int,
                    attempt: int, exc: BaseException) -> bool:
        """Poison the task so it passes through downstream chunks."""
        failure = TaskFailure(
            task_id=task_id, chunk_index=self.chunk_index,
            stage_index=index, pu_class=self.chunk.pu_class,
            error=repr(exc),
        )
        quarantine_task(task, failure)
        if self.injector is not None:
            self.injector.record(
                QUARANTINE, self.chunk.pu_class, index, task_id,
                attempt=attempt, detail=repr(exc),
            )
        reg = metrics()
        if reg.enabled:
            reg.counter("quarantine.count")
        trc = tracer()
        if trc.enabled:
            trc.instant("dispatch.quarantine", "runtime",
                        chunk=self.chunk_index, task=task_id,
                        stage=index, error=repr(exc))
        return False


class ThreadedPipelineExecutor:
    """Run an application's schedule with real threads and kernels.

    Args:
        application: Must provide ``make_task`` (functional inputs).
        chunks: The schedule's chunk decomposition (contiguous cover of
            all stages, in order).
        num_task_objects: Multi-buffering depth; defaults to
            ``len(chunks) + 1`` so every chunk can be busy while one task
            is in flight between the ends.
        affinity: Optional mapping pu_class -> core ids, recorded on the
            dispatcher threads.
        fault_injector: Optional fault-injection layer wrapped around
            every kernel dispatch (:mod:`repro.runtime.faults`).
        retry_policy: Retry transient kernel failures with exponential
            backoff before giving up on a task.
        isolate_failures: Quarantine a task whose stage exhausts its
            recovery budget (reported in the result's ``failures``)
            instead of unwinding the whole pipeline.
        queue_timeout_s: Per-operation queue timeout; a wedged pipeline
            fails with ``TimeoutError`` instead of hanging.
        watchdog: Optional supervision thresholds; when set, a
            :class:`~repro.runtime.watchdog.Watchdog` thread monitors
            every dispatcher's heartbeat, logs per-chunk deadline
            overruns and cancels stalled dispatches (which are then
            quarantined or unwound like any other failure).
    """

    def __init__(
        self,
        application: Application,
        chunks: Sequence[Chunk],
        num_task_objects: Optional[int] = None,
        affinity: Optional[Dict[str, Sequence[int]]] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        isolate_failures: bool = False,
        queue_timeout_s: float = _QUEUE_TIMEOUT_S,
        watchdog: Optional[WatchdogConfig] = None,
    ):
        _check_chunk_cover(application, chunks)
        if application.make_task is None:
            raise PipelineError(
                f"{application.name!r} has no task factory; the threaded "
                "back-end needs real inputs"
            )
        self.application = application
        self.chunks = list(chunks)
        self.depth = (
            num_task_objects if num_task_objects is not None
            else len(self.chunks) + 1
        )
        if self.depth < 1:
            raise PipelineError("need at least one TaskObject")
        self.affinity = affinity or {}
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.isolate_failures = isolate_failures
        if queue_timeout_s <= 0:
            raise PipelineError("queue_timeout_s must be > 0")
        self.queue_timeout_s = queue_timeout_s
        self.watchdog_config = watchdog

    def run(
        self,
        n_tasks: int,
        on_complete: Optional[Callable[[TaskObject, int], None]] = None,
        validate: bool = False,
    ) -> ThreadedRunResult:
        """Stream ``n_tasks`` inputs through the pipeline.

        Args:
            n_tasks: Number of tasks to process.
            on_complete: Called with (task_object, task_index) after the
                final chunk finishes each task, before recycling.
            validate: Run the application's ``validate_task`` on every
                completed task.
        """
        if n_tasks < 1:
            raise PipelineError("n_tasks must be >= 1")
        queues = [
            SpscQueue(capacity=self.depth + 1, name=f"pipe-q{i}")
            for i in range(len(self.chunks) + 1)
        ]
        heartbeats: Optional[List[Heartbeat]] = None
        watchdog: Optional[Watchdog] = None
        if self.watchdog_config is not None:
            heartbeats = [
                Heartbeat(i, chunk.pu_class)
                for i, chunk in enumerate(self.chunks)
            ]
            watchdog = Watchdog(heartbeats, self.watchdog_config,
                                injector=self.fault_injector)
        dispatchers = [
            _Dispatcher(
                chunk_index=i,
                chunk=chunk,
                application=self.application,
                in_queue=queues[i],
                out_queue=queues[i + 1],
                affinity_cores=self.affinity.get(chunk.pu_class, ()),
                queue_timeout_s=self.queue_timeout_s,
                fault_injector=self.fault_injector,
                retry_policy=self.retry_policy,
                isolate_failures=self.isolate_failures,
                heartbeat=heartbeats[i] if heartbeats is not None else None,
            )
            for i, chunk in enumerate(self.chunks)
        ]
        start = time.perf_counter()
        if watchdog is not None:
            watchdog.start()
        for dispatcher in dispatchers:
            dispatcher.start()

        issued = 0
        completed = 0
        failures: List[TaskFailure] = []
        try:
            # Prime the pipeline with the multi-buffered TaskObjects.
            for slot in range(min(self.depth, n_tasks)):
                queues[0].push(self._load_task(TaskObject(slot), issued),
                               timeout=self.queue_timeout_s)
                issued += 1
            # Drain + recycle until all tasks complete.
            while completed < n_tasks:
                try:
                    task = queues[-1].pop(timeout=self.queue_timeout_s)
                except QueueClosedError:
                    break  # a dispatcher crashed and unwound the queues
                if task is _POISON:  # pragma: no cover - defensive
                    raise PipelineError("pipeline shut down early")
                failure = task_failure(task)
                if failure is not None:
                    failures.append(failure)
                else:
                    self._finish_task(task, completed, on_complete,
                                      validate)
                completed += 1
                if issued < n_tasks:
                    task.recycle(issued)
                    try:
                        queues[0].push(self._load_task(task, issued),
                                       timeout=self.queue_timeout_s)
                    except QueueClosedError:
                        break  # pipeline unwound mid-recycle
                    issued += 1
                else:
                    # Retired for good: any later access is a lifetime
                    # bug the concurrency checker will flag.
                    task.release()
            if completed == n_tasks:
                try:
                    queues[0].push(_POISON, timeout=self.queue_timeout_s)
                except QueueClosedError:  # pragma: no cover - late crash
                    pass
        finally:
            # Close every queue *before* joining: a dispatcher blocked on
            # an upstream pop must wake even when the failure happened
            # downstream of it.  Closed queues still drain queued items
            # (including the poison pill), so the clean-shutdown path is
            # unaffected.
            for queue in queues:
                queue.close()
        for dispatcher in dispatchers:
            dispatcher.join(timeout=self.queue_timeout_s)
        if watchdog is not None:
            # Stop only after the dispatchers joined: a dispatcher still
            # blocked in a cancellable sleep needs the supervisor alive
            # to cancel it.
            watchdog.stop()
        for dispatcher in dispatchers:
            if dispatcher.error is not None:
                raise PipelineError(
                    f"dispatcher {dispatcher.name} failed after "
                    f"{completed} of {n_tasks} tasks"
                ) from dispatcher.error
        if completed < n_tasks:
            # The queues unwound without any dispatcher recording an
            # error; returning a result here would silently claim the
            # missing tasks completed.
            raise PipelineError(
                f"pipeline shut down early: {completed} of {n_tasks} "
                "tasks completed and no dispatcher error was recorded"
            )
        wall = time.perf_counter() - start
        trc = tracer()
        if trc.enabled:
            with trc.span("pipeline.run", "runtime", n_tasks=n_tasks,
                          chunks=len(self.chunks), completed=completed):
                pass
            reg = metrics()
            reg.counter("pipeline.runs")
            if failures:
                reg.counter("pipeline.quarantined_tasks", len(failures))
        return ThreadedRunResult(
            n_tasks=n_tasks,
            wall_seconds=wall,
            chunk_stage_counts={
                d.chunk_index: d.stages_executed for d in dispatchers
            },
            validated=validate,
            completed=completed,
            failures=failures,
            fault_events=(self.fault_injector.events
                          if self.fault_injector is not None else ()),
            watchdog_events=(tuple(watchdog.events)
                             if watchdog is not None else ()),
        )

    # ------------------------------------------------------------------
    def _load_task(self, task: TaskObject, index: int) -> TaskObject:
        payload = self.application.make_task(index)
        for name, array in payload.items():
            task[name] = array
        task.set_constant("task_index", index)
        clear_quarantine(task)  # recycled objects must start healthy
        return task

    def _finish_task(self, task: TaskObject, index: int,
                     on_complete: Optional[Callable[[TaskObject, int], None]],
                     validate: bool) -> None:
        if validate and self.application.validate_task is not None:
            self.application.validate_task(task)
        if on_complete is not None:
            on_complete(task, index)


def _check_chunk_cover(application: Application,
                       chunks: Sequence[Chunk]) -> None:
    """Chunks must tile [0, num_stages) in order with distinct PUs."""
    if not chunks:
        raise PipelineError("a pipeline needs at least one chunk")
    expected = 0
    seen_pus: List[str] = []
    for chunk in chunks:
        if chunk.start != expected:
            raise PipelineError(
                f"chunk gap/overlap at stage {expected} (chunk starts at "
                f"{chunk.start})"
            )
        expected = chunk.stop
        if chunk.pu_class in seen_pus:
            raise PipelineError(
                f"PU class {chunk.pu_class!r} used by two chunks - stages "
                "on one PU must form a single chunk (constraint C2)"
            )
        seen_pus.append(chunk.pu_class)
    if expected != application.num_stages:
        raise PipelineError(
            f"chunks cover {expected} stages, application has "
            f"{application.num_stages}"
        )
