"""Tests for Stage, Chunk, Application and TaskGraph."""

import pytest

from repro.core import Application, Chunk, Stage, TaskGraph
from repro.errors import SchedulingError
from repro.soc import WorkProfile


def work():
    return WorkProfile(flops=1e6, bytes_moved=1e5, parallelism=100.0)


def noop(task):
    task.setdefault("ran", []).append(True)


def make_stage(name, cpu=noop, gpu=noop):
    return Stage(name=name, work=work(), kernels={"cpu": cpu, "gpu": gpu})


class TestStage:
    def test_kernel_lookup(self):
        stage = make_stage("s")
        assert stage.kernel("cpu") is noop
        assert stage.has_kernel("gpu")

    def test_kernel_for_pu_maps_cpu_clusters_to_host_kernel(self):
        cpu_fn, gpu_fn = (lambda t: None), (lambda t: None)
        stage = Stage("s", work(), {"cpu": cpu_fn, "gpu": gpu_fn})
        assert stage.kernel_for_pu("big") is cpu_fn
        assert stage.kernel_for_pu("little") is cpu_fn
        assert stage.kernel_for_pu("gpu") is gpu_fn

    def test_model_only_stage_has_no_kernels(self):
        stage = Stage.model_only("s", work())
        assert not stage.has_kernel("cpu")
        with pytest.raises(SchedulingError):
            stage.kernel("cpu")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError):
            Stage("s", work(), {"tpu": noop})
        with pytest.raises(SchedulingError):
            make_stage("s").kernel("npu")

    def test_empty_name_rejected(self):
        with pytest.raises(SchedulingError):
            make_stage("")


class TestChunk:
    def test_length_and_indices(self):
        chunk = Chunk(start=2, stop=5, pu_class="big")
        assert len(chunk) == 3
        assert list(chunk.stage_indices) == [2, 3, 4]

    def test_bad_bounds(self):
        with pytest.raises(SchedulingError):
            Chunk(start=3, stop=3, pu_class="big")
        with pytest.raises(SchedulingError):
            Chunk(start=-1, stop=2, pu_class="big")


class TestApplication:
    def test_basic_lookup(self):
        app = Application("test", [make_stage("a"), make_stage("b")])
        assert app.num_stages == 2
        assert app.stage_names == ("a", "b")
        assert app.stage("b").name == "b"
        assert app.stage_index("b") == 1

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(SchedulingError):
            Application("t", [make_stage("a"), make_stage("a")])

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            Application("t", [])

    def test_unknown_stage(self):
        app = Application("t", [make_stage("a")])
        with pytest.raises(SchedulingError):
            app.stage("z")


class TestTaskGraph:
    def test_linear_graph_keeps_order(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        graph.add_stage(make_stage("b"), deps=("a",))
        graph.add_stage(make_stage("c"), deps=("b",))
        assert [s.name for s in graph.linearize()] == ["a", "b", "c"]

    def test_diamond_dependency(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        graph.add_stage(make_stage("b"), deps=("a",))
        graph.add_stage(make_stage("c"), deps=("a",))
        graph.add_stage(make_stage("d"), deps=("b", "c"))
        order = [s.name for s in graph.linearize()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_octree_style_multiway_dependency(self):
        """Mimics the paper's stage-7-depends-on-3,4,6 structure."""
        graph = TaskGraph()
        for name, deps in [
            ("s1", ()), ("s2", ("s1",)), ("s3", ("s2",)),
            ("s4", ("s3",)), ("s5", ("s4",)), ("s6", ("s5",)),
            ("s7", ("s3", "s4", "s6")),
        ]:
            graph.add_stage(make_stage(name), deps=deps)
        order = [s.name for s in graph.linearize()]
        assert order == ["s1", "s2", "s3", "s4", "s5", "s6", "s7"]

    def test_deterministic_among_ready(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("z"))
        graph.add_stage(make_stage("a"))
        # Insertion order wins, not alphabetical.
        assert [s.name for s in graph.linearize()] == ["z", "a"]

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        graph.add_stage(make_stage("b"), deps=("a",))
        graph._deps["a"].append("b")  # force a cycle
        with pytest.raises(SchedulingError):
            graph.linearize()

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(SchedulingError):
            graph.add_stage(make_stage("b"), deps=("missing",))

    def test_duplicate_stage_rejected(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        with pytest.raises(SchedulingError):
            graph.add_stage(make_stage("a"))

    def test_to_application(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        graph.add_stage(make_stage("b"), deps=("a",))
        app = graph.to_application("test")
        assert isinstance(app, Application)
        assert app.stage_names == ("a", "b")

    def test_dependencies_accessor(self):
        graph = TaskGraph()
        graph.add_stage(make_stage("a"))
        graph.add_stage(make_stage("b"), deps=("a",))
        assert graph.dependencies("b") == ("a",)
        with pytest.raises(SchedulingError):
            graph.dependencies("zz")
