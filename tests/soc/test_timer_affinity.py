"""Tests for virtual timers, measurement noise, and affinity maps."""

import pytest

from repro.errors import PlatformError
from repro.soc import (
    AffinityEntry,
    AffinityMap,
    MeasurementNoise,
    VirtualTimer,
    mean_of_measurements,
)
from repro.soc.pu import BIG, GPU, LITTLE


class TestVirtualTimer:
    def test_starts_at_zero(self):
        assert VirtualTimer().now_s == 0.0

    def test_advance_accumulates(self):
        timer = VirtualTimer()
        timer.advance(0.5)
        timer.advance(0.25)
        assert timer.now_s == pytest.approx(0.75)

    def test_ticks_scale(self):
        timer = VirtualTimer()
        timer.advance(1e-6)
        assert timer.ticks == 1000

    def test_advance_to(self):
        timer = VirtualTimer()
        timer.advance_to(2.0)
        assert timer.now_s == 2.0

    def test_cannot_rewind(self):
        timer = VirtualTimer()
        timer.advance(1.0)
        with pytest.raises(PlatformError):
            timer.advance_to(0.5)
        with pytest.raises(PlatformError):
            timer.advance(-0.1)

    def test_rejects_non_finite(self):
        with pytest.raises(PlatformError):
            VirtualTimer().advance(float("inf"))


class TestMeasurementNoise:
    def test_zero_sigma_is_exact(self):
        noise = MeasurementNoise(sigma=0.0, seed=1)
        assert noise.perturb(3.0, noise.rng("k")) == 3.0

    def test_same_key_same_stream(self):
        noise = MeasurementNoise(sigma=0.05, seed=1)
        a = [noise.perturb(1.0, noise.rng("k")) for _ in range(1)]
        b = [noise.perturb(1.0, noise.rng("k")) for _ in range(1)]
        assert a == b

    def test_different_seed_different_stream(self):
        n1 = MeasurementNoise(sigma=0.05, seed=1)
        n2 = MeasurementNoise(sigma=0.05, seed=2)
        assert n1.perturb(1.0, n1.rng("k")) != n2.perturb(1.0, n2.rng("k"))

    def test_mean_one_property(self):
        noise = MeasurementNoise(sigma=0.1, seed=3)
        rng = noise.rng("stream")
        samples = [noise.perturb(2.0, rng) for _ in range(2000)]
        assert mean_of_measurements(samples) == pytest.approx(2.0, rel=0.02)

    def test_rejects_negative_sigma(self):
        with pytest.raises(PlatformError):
            MeasurementNoise(sigma=-0.1)

    def test_rejects_negative_duration(self):
        noise = MeasurementNoise(sigma=0.1)
        with pytest.raises(PlatformError):
            noise.perturb(-1.0, noise.rng("k"))

    def test_mean_of_zero_measurements_rejected(self):
        with pytest.raises(PlatformError):
            mean_of_measurements([])


class TestAffinityMap:
    def make_map(self, little_pinnable=True):
        return AffinityMap(
            {
                BIG: AffinityEntry(core_ids=(6, 7)),
                LITTLE: AffinityEntry(
                    core_ids=(0, 1, 2, 3), pinnable=little_pinnable
                ),
            }
        )

    def test_core_ids(self):
        amap = self.make_map()
        assert amap.core_ids(BIG) == (6, 7)
        assert amap.core_ids(GPU) == ()

    def test_duplicate_core_ids_rejected(self):
        with pytest.raises(PlatformError):
            AffinityMap(
                {
                    BIG: AffinityEntry(core_ids=(0, 1)),
                    LITTLE: AffinityEntry(core_ids=(1, 2)),
                }
            )

    def test_schedulable_excludes_unpinnable(self):
        amap = self.make_map(little_pinnable=False)
        assert LITTLE not in amap.schedulable_classes()
        assert BIG in amap.schedulable_classes()
        assert GPU in amap.schedulable_classes()

    def test_no_gpu_map(self):
        amap = AffinityMap(
            {BIG: AffinityEntry(core_ids=(0,))}, has_gpu=False
        )
        assert GPU not in amap.schedulable_classes()

    def test_unknown_class(self):
        with pytest.raises(PlatformError):
            self.make_map().core_ids("npu")

    def test_counts(self):
        amap = self.make_map(little_pinnable=False)
        assert amap.total_cores() == 6
        assert amap.pinnable_cores() == 2

    def test_describe(self):
        text = self.make_map(little_pinnable=False).describe()
        assert "NOT pinnable" in text
        assert "gpu" in text
