"""Ablation: candidate-count K sensitivity for autotuning (section 3.3
fixes K = 20; how much of the gain does a smaller campaign capture?)."""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_alexnet_sparse
from repro.core.framework import BetterTogether
from repro.soc import get_platform


def test_k_sensitivity(benchmark):
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    framework = BetterTogether(platform, repetitions=10, k=20,
                               eval_tasks=20)
    table = framework.profile(application)
    optimization = framework.optimize(application, table)

    def campaign():
        outcomes = {}
        for k in (1, 5, 10, 20):
            tuned = framework.autotune(application, optimization)
            subset = tuned.entries[:k]
            outcomes[k] = min(e.measured_latency_s for e in subset)
        return outcomes

    outcomes = run_once(benchmark, campaign)
    print("\nbest measured latency by campaign size K:")
    for k, latency in outcomes.items():
        print(f"  K={k:2d}: {latency * 1e3:.3f} ms")
    # Larger campaigns never lose, and K=20 beats the un-tuned K=1 pick.
    assert outcomes[20] <= outcomes[10] <= outcomes[5] <= outcomes[1]
    assert outcomes[20] < outcomes[1]
