"""One SoC shard: a platform, a heartbeat, and server generations.

A shard is the fleet's failure domain.  Its :class:`PipelineServer` is
driven in *step mode* by the fleet loop (one thread drives every shard,
which is what keeps cross-shard event order deterministic), and is
replaced wholesale on crash/rejoin: generation ``n+1`` starts with an
empty placement and tenant registry, sharing only the platform and the
fleet-owned plan cache with its predecessor.  The heartbeat object
outlives generations - health is a property of the shard, not of one
server incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.plan_cache import PlanCache
from repro.errors import FleetError
from repro.runtime.watchdog import Heartbeat
from repro.serve.metrics import ServeReport
from repro.serve.server import PipelineServer, ServerConfig
from repro.soc.platform import Platform


@dataclass(frozen=True)
class ShardSpec:
    """Declares one shard of the fleet."""

    name: str
    platform_name: str = "pixel7a"
    platform_seed: int = 7

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("a shard needs a non-empty name")


class SoCShard:
    """Runtime state of one shard across server generations."""

    def __init__(
        self,
        index: int,
        spec: ShardSpec,
        platform: Platform,
        plan_cache: PlanCache,
        server_config: ServerConfig,
        fleet_seed: int = 0,
    ):
        self.index = index
        self.spec = spec
        self.name = spec.name
        self.platform = platform
        self.plan_cache = plan_cache
        self.server_config = server_config
        self.fleet_seed = fleet_seed
        self.heartbeat = Heartbeat(index, f"shard:{spec.name}")
        self.generation = 0
        self.gray = False
        self.server: Optional[PipelineServer] = None
        #: Reports of closed generations, in close order.
        self.closed_reports: List[ServeReport] = []
        self._cursor = 0

    @property
    def alive(self) -> bool:
        return self.server is not None

    def boot(self) -> None:
        """Start a new server generation in step mode."""
        if self.server is not None:
            raise FleetError(
                f"shard {self.name!r} already has a live generation"
            )
        self.generation += 1
        # One seed per (fleet, shard, generation) coordinate, so a
        # rejoined shard does not replay its predecessor's stream.
        seed = (self.fleet_seed * 10_000 + self.index * 100
                + self.generation)
        self.server = PipelineServer(
            self.platform, seed=seed, config=self.server_config,
            plan_cache=self.plan_cache,
        )
        self.server.open_stepped()
        self._cursor = 0

    def close(self, detail: Optional[str] = None) -> ServeReport:
        """Close the live generation (crash or fleet drain)."""
        if self.server is None:
            raise FleetError(f"shard {self.name!r} is not live")
        report = self.server.close_stepped(detail)
        self.closed_reports.append(report)
        self.server = None
        self.gray = False
        return report

    def step(self, tick: int) -> None:
        """Advance the live generation one tick, beating the shard
        heartbeat unless the shard is in a gray-failure window."""
        if self.server is None:
            raise FleetError(f"cannot step dead shard {self.name!r}")
        if not self.gray:
            self.heartbeat.start_task(tick)
        self.server.step(tick)
        if not self.gray:
            self.heartbeat.idle()

    def new_events(self) -> List[Dict[str, object]]:
        """Timeline entries appended since the last harvest."""
        if self.server is None:
            return []
        events = self.server.timeline[self._cursor:]
        self._cursor = len(self.server.timeline)
        return events

    def report(self) -> Optional[ServeReport]:
        """The live generation's report so far (None when dead)."""
        if self.server is None:
            return None
        return self.server.report()
