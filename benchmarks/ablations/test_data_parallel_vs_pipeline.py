"""Ablation: pipelining vs the data-parallel alternative (paper section 1).

The introduction dismisses splitting each stage's *data* across PUs:
every PU must then run every stage, including the ones it is terrible
at.  This ablation quantifies that across the full grid: BetterTogether's
deployed pipeline vs the optimal-split data-parallel estimate.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_octree_application
from repro.baselines import data_parallel_baseline, split_evenness
from repro.core.framework import BetterTogether
from repro.eval.metrics import format_table, geometric_mean
from repro.soc import PLATFORM_NAMES, get_platform


def test_pipelining_beats_data_parallel_everywhere(benchmark):
    application = build_octree_application()

    def evaluate():
        cells = {}
        for name in PLATFORM_NAMES:
            platform = get_platform(name)
            plan = BetterTogether(platform, repetitions=10, k=10,
                                  eval_tasks=15).run(application)
            dp = data_parallel_baseline(application, platform)
            skew = max(split_evenness(dp).values())
            cells[name] = (
                plan.measured_latency_s, dp.task_latency_s, skew,
            )
        return cells

    cells = run_once(benchmark, evaluate)
    rows = [["device", "pipeline (ms)", "data-parallel (ms)",
             "advantage", "worst split skew"]]
    advantages = []
    for name, (pipeline, data_parallel, skew) in cells.items():
        advantages.append(data_parallel / pipeline)
        rows.append([
            name, f"{pipeline * 1e3:.3f}", f"{data_parallel * 1e3:.3f}",
            f"{data_parallel / pipeline:.2f}x", f"{skew:.0f}x",
        ])
    print("\n" + format_table(rows))
    print(f"geomean pipelining advantage: "
          f"{geometric_mean(advantages):.2f}x")

    # Pipelining wins on every device (the paper's section-1 argument).
    assert all(a > 1.0 for a in advantages)
    # And the data-parallel splits are forced into heavy skew somewhere
    # (a PU doing work it is terrible at).
    assert all(skew > 3.0 for _, _, skew in cells.values())
