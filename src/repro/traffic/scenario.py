"""The seeded overload soak: one scenario behind CLI, CI, and tests.

Mirrors :mod:`repro.fleet.scenario` for the traffic layer: a single
:class:`FleetOverloadScenario` drives ``repro traffic soak``, the CI
``traffic-soak`` job, and the acceptance tests, so the open-loop
determinism guarantee and the admission-control goodput gate are
exercised on exactly what ships.

The default scenario offers ~1.5x the fleet's saturation load (with a
mid-run burst on top) and runs twice per evaluation: once with the
interference-aware admission ceiling, once admitting everything that
physically fits.  Admit-everything packs every shard to its class
limit, so every window is served at the interference-heavy end of the
profile and blows through the tier SLOs; the admission ceiling keeps
high-contention-span tenants from being packed and turns the excess
into fast structured rejections instead.  Throughput favours
admit-everything; *goodput* - SLO-attaining window-tasks, the number a
production fleet actually sells - must strictly favour admission
control (the acceptance gate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import TrafficError
from repro.fleet.health import HealthConfig
from repro.fleet.router import FleetConfig, FleetRouter
from repro.fleet.shard import ShardSpec
from repro.obs.alerts import BurnRateRule
from repro.traffic.driver import OpenLoopDriver, TrafficRunResult
from repro.traffic.generator import TrafficGenerator
from repro.traffic.slo import TrafficReport, evaluate
from repro.traffic.spec import BurstSpec, TierSpec, TrafficSpec
from repro.traffic.trace import TrafficTrace

#: The overload scenario's service tiers.  The SLOs sit deliberately
#: between the two regimes the admission ceiling separates: a
#: ceiling-respecting pack keeps every incumbent's predicted slowdown
#: under ~1.25, while admit-everything's full packs run their CPU-side
#: windows at 1.25-1.55x (DRAM saturation included) - so these
#: thresholds are attainable with admission control and breached en
#: masse without it.
OVERLOAD_TIERS = (
    TierSpec(name="gold", priority=2, weight=1.0, slo_slowdown=1.18),
    TierSpec(name="silver", priority=1, weight=2.0, slo_slowdown=1.20),
    TierSpec(name="bronze", priority=0, weight=3.0, slo_slowdown=1.22),
)


@dataclass(frozen=True)
class FleetOverloadScenario:
    """Parameters of one deterministic overload run."""

    seed: int = 7
    n_shards: int = 2
    platform_name: str = "pixel7a"
    platform_seed: int = 7
    ticks: int = 48
    #: Arrival intensity at 1.0x: calibrated so the offered window
    #: demand roughly matches what n_shards fully-packed pixel7a
    #: shards can serve (one window per running tenant per tick,
    #: four single-class partitions per shard).
    saturation_arrivals_per_tick: float = 1.1
    #: The overload knob: offered load as a multiple of saturation.
    load_multiplier: float = 1.5
    #: Mid-run burst overlay (also what the recovery metric watches).
    burst_start_tick: int = 16
    burst_end_tick: int = 24
    burst_multiplier: float = 2.0
    diurnal_amplitude: float = 0.25
    #: Admission-on ceiling on each incumbent's *total* predicted
    #: slowdown (cumulative pricing).  1.25 allows pairs and most
    #: triples but refuses the fourth co-tenant and any pack whose
    #: heavier pipelines (contention spans up to ~1.55) would be
    #: crushed - so admitted windows stay under the tier SLOs.
    admission_max_impact_ratio: float = 1.25
    #: "Admit everything": an impact ceiling no prediction reaches, so
    #: shards pack until no free PU classes remain.
    admit_everything_ratio: float = 1e9
    #: Ticks an unplaceable tenant waits before structured rejection -
    #: short, so overload sheds load instead of parking it.
    backlog_patience: int = 6
    stage_count: int = 3
    app_pool_size: int = 4

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise TrafficError("overload scenario needs >= 1 shard")
        if self.load_multiplier <= 0.0:
            raise TrafficError("load_multiplier must be positive")

    def spec(self) -> TrafficSpec:
        """The workload this scenario offers."""
        return TrafficSpec(
            ticks=self.ticks,
            arrivals_per_tick=self.saturation_arrivals_per_tick,
            load_multiplier=self.load_multiplier,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period_ticks=self.ticks,
            bursts=(BurstSpec(
                start_tick=self.burst_start_tick,
                end_tick=self.burst_end_tick,
                multiplier=self.burst_multiplier,
            ),),
            tiers=OVERLOAD_TIERS,
            app_pool_size=self.app_pool_size,
            stage_count=self.stage_count,
        )

    def at_multiplier(self, multiplier: float) -> "FleetOverloadScenario":
        """The same scenario at a different offered-load multiple."""
        return replace(self, load_multiplier=multiplier)

    def build_fleet(self, admission: bool = True,
                    attribution: bool = False) -> FleetRouter:
        """A fresh fleet for one run of this scenario.

        ``attribution`` turns on per-window blame decomposition on
        every shard (off by default - the soak's byte-diff arms run
        without it; ``repro top`` runs with it).
        """
        ratio = (self.admission_max_impact_ratio if admission
                 else self.admit_everything_ratio)
        return FleetRouter(
            [ShardSpec(
                name=f"soc{i}",
                platform_name=self.platform_name,
                platform_seed=self.platform_seed,
            ) for i in range(self.n_shards)],
            seed=self.seed,
            config=FleetConfig(
                max_ticks=self.ticks,
                max_impact_ratio=ratio,
                # Cumulative pricing makes the ceiling a hard bound on
                # how deep a shard can ever be packed; at the
                # admit-everything ratio no prediction reaches it, so
                # the mode is inert for the OFF arm.
                cumulative_impact=True,
                max_partition_classes=1,
                backlog_patience=self.backlog_patience,
                health=HealthConfig(),
                attribution=attribution,
            ),
        )


def run_overload_soak(
    scenario: FleetOverloadScenario,
    admission: bool = True,
    trace: Optional[TrafficTrace] = None,
    attribution: bool = False,
    burn: Optional[BurnRateRule] = None,
    on_tick=None,
) -> Tuple[TrafficRunResult, TrafficReport]:
    """One open-loop run: generate (or replay), drive, evaluate.

    With ``trace`` set, the frozen stream replaces the generator and
    the trace's own spec/seed govern evaluation - replaying a recorded
    trace therefore reproduces the recorded run byte-identically.
    ``attribution``/``burn`` arm blame decomposition and per-tier
    burn-rate alerting (both off by default; ``repro top`` turns both
    on); ``on_tick`` observes each tick's trajectory entry live.
    """
    if trace is not None:
        spec, seed = trace.spec, trace.seed
        events = list(trace.events)
    else:
        spec, seed = scenario.spec(), scenario.seed
        events = TrafficGenerator(spec, seed=seed).events()
    router = scenario.build_fleet(admission=admission,
                                  attribution=attribution)
    driver = OpenLoopDriver(
        router, events, ticks=spec.ticks,
        stage_count=spec.stage_count,
        slo_by_tier={tier.name: tier.slo_slowdown
                     for tier in spec.tiers},
        burn=burn,
    )
    result = driver.run(on_tick=on_tick)
    return result, evaluate(spec, seed, result)


def overload_curve(
    scenario: FleetOverloadScenario,
    multipliers: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    admission: bool = True,
) -> List[Dict[str, object]]:
    """Goodput-vs-offered-load: one point per load multiple.

    The graceful-degradation shape the acceptance test asserts: with
    admission control, goodput rises with offered load up to
    saturation and then *plateaus* (excess is rejected, not served
    badly); without it, goodput collapses past saturation.
    """
    points: List[Dict[str, object]] = []
    for multiplier in multipliers:
        _, report = run_overload_soak(
            scenario.at_multiplier(multiplier), admission=admission,
        )
        points.append({
            "load_multiplier": multiplier,
            "arrivals": report.arrivals,
            "offered_windows": report.offered_windows,
            "served_windows": report.served_windows,
            "goodput_windows": report.goodput_windows,
            "goodput_tasks": report.goodput_tasks,
        })
    return points
