"""Tests for the dynamic concurrency checker (``REPRO_CHECK=1``)."""

import threading

import numpy as np
import pytest

from repro.analysis import lock_order, runtime_checks
from repro.analysis.runtime_checks import (
    BUFFER_ALIAS,
    LOCK_ORDER,
    SPSC_CONSUMER,
    SPSC_PRODUCER,
    USE_AFTER_RELEASE,
)
from repro.runtime import SpscQueue, TaskObject, UsmBuffer


def run_in_thread(fn):
    worker = threading.Thread(target=fn, name="intruder")
    worker.start()
    worker.join(timeout=10)
    assert not worker.is_alive()


class TestSpscDiscipline:
    def test_second_producer_detected(self):
        with runtime_checks.collecting() as log:
            queue = SpscQueue(capacity=4, name="t-two-producers")
            queue.push("from-main")
            run_in_thread(lambda: queue.push("from-intruder"))
        violations = log.snapshot()
        assert log.counts == {SPSC_PRODUCER: 1}
        assert violations[0].where == "t-two-producers"
        assert violations[0].thread == "intruder"

    def test_second_consumer_detected(self):
        with runtime_checks.collecting() as log:
            queue = SpscQueue(capacity=4, name="t-two-consumers")
            queue.push("a")
            queue.push("b")
            assert queue.pop() == "a"
            run_in_thread(queue.pop)
        assert log.counts == {SPSC_CONSUMER: 1}

    def test_same_thread_both_ends_is_fine(self):
        with runtime_checks.collecting() as log:
            queue = SpscQueue(capacity=2)
            queue.push(1)
            assert queue.pop() == 1
        assert len(log) == 0

    def test_close_is_exempt_from_binding(self):
        with runtime_checks.collecting() as log:
            queue = SpscQueue(capacity=2)
            run_in_thread(lambda: queue.push("x"))
            queue.close()  # any thread may unwind the pipeline
        assert len(log) == 0

    def test_try_ops_also_bind(self):
        with runtime_checks.collecting() as log:
            queue = SpscQueue(capacity=2)
            queue.try_push(1)
            run_in_thread(lambda: queue.try_push(2))
        assert log.counts == {SPSC_PRODUCER: 1}


class TestLifetime:
    def test_use_after_release_on_buffer(self):
        with runtime_checks.collecting() as log:
            buffer = UsmBuffer("loose", (2,), np.float32)
            buffer.release()
            assert buffer.released
            buffer.host_view()
        violations = log.snapshot()
        assert log.counts == {USE_AFTER_RELEASE: 1}
        assert violations[0].where == "UsmBuffer 'loose'"

    def test_use_after_release_on_task_object(self):
        with runtime_checks.collecting() as log:
            task = TaskObject(7)
            task.allocate("scratch", (4,), np.float32)
            task.release()
            task.buffer("scratch")
            task.recycle(8)
        assert log.counts == {USE_AFTER_RELEASE: 2}
        assert all(v.where == "TaskObject 7" for v in log.snapshot())

    def test_release_is_idempotent_and_quiet(self):
        with runtime_checks.collecting() as log:
            task = TaskObject(0)
            task.allocate("a", (1,), np.int64)
            task.release()
            task.release()
        assert len(log) == 0

    def test_buffer_alias_detected(self):
        with runtime_checks.collecting() as log:
            storage = np.zeros(8, dtype=np.float32)
            task = TaskObject(0)
            task.wrap("left", storage)
            task.wrap("right", storage[2:6])
        assert log.counts == {BUFFER_ALIAS: 1}

    def test_disjoint_wraps_are_fine(self):
        with runtime_checks.collecting() as log:
            storage = np.zeros(8, dtype=np.float32)
            task = TaskObject(0)
            task.wrap("left", storage[:4])
            task.wrap("right", storage[4:])
        assert len(log) == 0

    def test_wrap_is_zero_copy(self):
        storage = np.arange(4, dtype=np.float32)
        task = TaskObject(0)
        task.wrap("payload", storage)
        task["payload"][0] = 9.0
        assert storage[0] == 9.0


class TestLockOrder:
    def test_inverted_acquisition_reports_cycle(self):
        with runtime_checks.collecting() as log:
            lock_a = lock_order.TrackedLock("t-cycle-a")
            lock_b = lock_order.TrackedLock("t-cycle-b")
            with lock_a:
                with lock_b:
                    pass

            def inverted():
                with lock_b:
                    with lock_a:
                        pass

            run_in_thread(inverted)
        assert log.counts == {LOCK_ORDER: 1}

    def test_consistent_order_is_fine(self):
        with runtime_checks.collecting() as log:
            lock_a = lock_order.TrackedLock("t-order-a")
            lock_b = lock_order.TrackedLock("t-order-b")
            with lock_a:
                with lock_b:
                    pass

            def same_order():
                with lock_a:
                    with lock_b:
                        pass

            run_in_thread(same_order)
        assert len(log) == 0

    def test_checked_lock_binds_at_construction(self):
        was_enabled = runtime_checks.checks_enabled()
        try:
            runtime_checks.enable_checks()
            assert isinstance(lock_order.checked_lock("t-bind"),
                              lock_order.TrackedLock)
            runtime_checks.disable_checks()
            assert isinstance(lock_order.checked_lock("t-unbound"),
                              type(threading.Lock()))
        finally:
            if was_enabled:
                runtime_checks.enable_checks()
            else:
                runtime_checks.disable_checks()


class TestLogPlumbing:
    def test_disabled_recording_is_noop(self):
        was_enabled = runtime_checks.checks_enabled()
        runtime_checks.disable_checks()
        try:
            with runtime_checks.collecting(enable=False) as log:
                runtime_checks.record_violation("k", "w", "d")
            assert len(log) == 0
        finally:
            if was_enabled:
                runtime_checks.enable_checks()

    def test_collecting_isolates_the_global_log(self):
        before = len(runtime_checks.global_log())
        with runtime_checks.collecting() as log:
            runtime_checks.record_violation(SPSC_PRODUCER, "q", "seeded")
        assert len(log) == 1
        assert len(runtime_checks.global_log()) == before

    def test_log_since_and_to_dict(self):
        log = runtime_checks.ViolationLog()
        log.record(runtime_checks.Violation("k1", "w", "d", "t"))
        mark = len(log)
        log.record(runtime_checks.Violation("k2", "w", "d", "t"))
        assert [v.kind for v in log.since(mark)] == ["k2"]
        data = log.to_dict()
        assert data["total"] == 2
        assert data["counts"] == {"k1": 1, "k2": 1}
