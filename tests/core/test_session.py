"""Tests for durable campaigns: checkpoint, corruption repair, resume.

The acceptance property: a campaign killed at any unit boundary -
SIGKILL included - and resumed produces artifacts byte-identical to an
uninterrupted run's, re-executing only the incomplete units.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.apps import build_octree_application
from repro.core import BetterTogether, CampaignSession
from repro.errors import CampaignError
from repro.serialization import CHECKSUM_KEY
from repro.soc import get_platform

_SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture
def framework():
    return BetterTogether(get_platform("jetson_orin_nano"),
                          repetitions=2, k=3, eval_tasks=4)


@pytest.fixture
def app():
    return build_octree_application()


def run_campaign(tmp_path, framework, app, name="session"):
    session = CampaignSession(tmp_path / name, framework)
    plan = session.run(app)
    return session, plan


def read_tree(directory):
    """{relative path: bytes} for every file under a session directory.

    Campaign artifacts are fully deterministic (``solver_wall_s`` is
    kept in-memory, never serialized), so every file - checksums
    included - must match byte for byte across runs.
    """
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(Path(directory).rglob("*.json"))
    }


class TestCheckpointing:
    def test_fresh_run_writes_every_unit(self, tmp_path, framework, app):
        session, plan = run_campaign(tmp_path, framework, app)
        n_cells = app.num_stages * len(framework.platform.pu_classes())
        assert session.report.cells_measured == n_cells
        assert session.report.cells_reused == 0
        assert session.report.measurements_run == 3
        tree = read_tree(session.directory)
        assert "manifest.json" in tree
        assert "optimization.json" in tree
        assert "schedule.json" in tree
        assert sum(1 for name in tree
                   if name.startswith("profiling/")) == n_cells

    def test_second_run_reuses_everything(self, tmp_path, framework, app):
        session, plan = run_campaign(tmp_path, framework, app)
        before = read_tree(session.directory)
        resumed = CampaignSession(session.directory, framework)
        replan = resumed.run(app)
        assert resumed.report.cells_measured == 0
        assert resumed.report.measurements_run == 0
        assert resumed.report.optimization_reused
        assert replan.schedule.assignments == plan.schedule.assignments
        assert read_tree(session.directory) == before

    def test_checkpointed_plan_matches_plain_run(self, tmp_path,
                                                 framework, app):
        _, plan = run_campaign(tmp_path, framework, app)
        plain = framework.run(app)
        assert plan.schedule.assignments == plain.schedule.assignments
        assert (plan.autotune.measured_best.measured_latency_s
                == plain.autotune.measured_best.measured_latency_s)

    def test_parameter_mismatch_rejected(self, tmp_path, framework, app):
        session, _ = run_campaign(tmp_path, framework, app)
        other = BetterTogether(framework.platform, repetitions=5, k=3,
                               eval_tasks=4)
        with pytest.raises(CampaignError, match="repetitions"):
            CampaignSession(session.directory, other).run(app)

    def test_status_reflects_progress(self, tmp_path, framework, app):
        session = CampaignSession(tmp_path / "s", framework)
        empty = session.status(app)
        assert empty["profiling_cells"]["done"] == 0
        assert not empty["schedule"]
        session.run(app)
        done = session.status(app)
        assert (done["profiling_cells"]["done"]
                == done["profiling_cells"]["total"])
        assert done["optimization"] and done["schedule"]
        assert done["autotune_measurements"] == [0, 1, 2]


class TestCorruptionRepair:
    """A damaged checkpoint is re-run, never trusted and never fatal."""

    def corrupt_one(self, session, mutate):
        cells = sorted((session.directory / "profiling").rglob("*.json"))
        mutate(cells[0])
        return cells[0]

    def test_truncated_cell_is_remeasured(self, tmp_path, framework, app):
        session, plan = run_campaign(tmp_path, framework, app)
        victim = self.corrupt_one(
            session, lambda p: p.write_text(p.read_text()[:40])
        )
        resumed = CampaignSession(session.directory, framework)
        replan = resumed.run(app)
        assert resumed.report.cells_measured == 1
        assert len(resumed.report.corrupt_units) == 1
        assert replan.schedule.assignments == plan.schedule.assignments
        json.loads(victim.read_text())  # repaired in place

    def test_flipped_checksum_is_detected(self, tmp_path, framework, app):
        session, _ = run_campaign(tmp_path, framework, app)

        def flip(path):
            data = json.loads(path.read_text())
            digest = data[CHECKSUM_KEY]
            data[CHECKSUM_KEY] = ("0" if digest[0] != "0" else "1") + digest[1:]
            path.write_text(json.dumps(data))

        self.corrupt_one(session, flip)
        resumed = CampaignSession(session.directory, framework)
        resumed.run(app)
        assert resumed.report.cells_measured == 1
        assert "checksum mismatch" in resumed.report.corrupt_units[0]

    def test_tampered_payload_fails_checksum(self, tmp_path, framework,
                                             app):
        session, _ = run_campaign(tmp_path, framework, app)

        def tamper(path):
            data = json.loads(path.read_text())
            data["mean_s"] = 123.456  # forged measurement
            path.write_text(json.dumps(data))

        self.corrupt_one(session, tamper)
        resumed = CampaignSession(session.directory, framework)
        resumed.run(app)
        assert resumed.report.cells_measured == 1

    def test_missing_files_are_recollected(self, tmp_path, framework,
                                           app):
        session, plan = run_campaign(tmp_path, framework, app)
        before = read_tree(session.directory)
        cells = sorted((session.directory / "profiling").rglob("*.json"))
        cells[0].unlink()
        cells[-1].unlink()
        (session.directory / "optimization.json").unlink()
        (session.directory / "autotune" / "cand_001.json").unlink()
        resumed = CampaignSession(session.directory, framework)
        resumed.run(app)
        assert resumed.report.cells_measured == 2
        assert not resumed.report.optimization_reused
        assert resumed.report.measurements_run == 1
        assert resumed.report.measurements_reused == 2
        # Determinism: the recollected units reproduce the originals.
        assert read_tree(session.directory) == before

    def test_corrupt_manifest_is_rewritten(self, tmp_path, framework,
                                           app):
        session, _ = run_campaign(tmp_path, framework, app)
        (session.directory / "manifest.json").write_text("{not json")
        resumed = CampaignSession(session.directory, framework)
        resumed.run(app)
        assert any("manifest" in unit
                   for unit in resumed.report.corrupt_units)
        assert resumed.report.cells_measured == 0  # cells still trusted


class TestCrashResume:
    """SIGKILL mid-campaign; resume must finish from the last unit."""

    KILL_AFTER = 9  # units: mid-way through the 14 profiling cells

    def crash_script(self, directory):
        return textwrap.dedent(f"""
            import os, signal
            from repro.apps import build_octree_application
            from repro.core import BetterTogether, CampaignSession
            from repro.soc import get_platform

            fw = BetterTogether(get_platform("jetson_orin_nano"),
                                repetitions=2, k=3, eval_tasks=4)
            session = CampaignSession({str(directory)!r}, fw)
            done = []

            def on_unit(unit):
                done.append(unit)
                if len(done) == {self.KILL_AFTER}:
                    os.kill(os.getpid(), signal.SIGKILL)

            session.run(build_octree_application(), on_unit=on_unit)
        """)

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path,
                                                   framework, app):
        interrupted = tmp_path / "interrupted"
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", self.crash_script(interrupted)],
            env=env, capture_output=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        partial = read_tree(interrupted)
        assert 0 < len(partial) - 1 <= self.KILL_AFTER  # +manifest
        assert "schedule.json" not in partial

        resumed = CampaignSession(interrupted, framework)
        plan = resumed.run(app)
        # Only the units the crash lost were re-executed.
        assert resumed.report.cells_reused == self.KILL_AFTER
        assert resumed.report.cells_measured == 14 - self.KILL_AFTER

        # The final artifacts are byte-identical to an uninterrupted
        # campaign's.
        _, reference_plan = run_campaign(tmp_path, framework, app,
                                         name="uninterrupted")
        assert read_tree(interrupted) == read_tree(
            tmp_path / "uninterrupted"
        )
        assert (plan.schedule.assignments
                == reference_plan.schedule.assignments)
