"""FleetRouter construction, submission, and small end-to-end runs."""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.errors import FleetError
from repro.fleet import (
    ChaosSchedule,
    FleetConfig,
    FleetRouter,
    ShardCrashSpec,
    ShardSpec,
)
from repro.serve.tenant import TenantSpec

TIMEOUT_S = 120.0


def _spec(name, seed=11, **kwargs):
    app = build_synthetic_application(seed=seed, stage_count=2)
    kwargs.setdefault("windows", 2)
    kwargs.setdefault("window_tasks", 4)
    return TenantSpec(name=name, application=app, **kwargs)


def _two_shards():
    return [ShardSpec("s0", platform_seed=7),
            ShardSpec("s1", platform_seed=7)]


class TestConstruction:
    def test_empty_fleet_rejected(self):
        with pytest.raises(FleetError, match="at least one shard"):
            FleetRouter([])

    def test_duplicate_shard_names_rejected(self):
        with pytest.raises(FleetError, match="duplicate shard names"):
            FleetRouter([ShardSpec("s0"), ShardSpec("s0")])

    def test_chaos_must_name_known_shards(self):
        chaos = ChaosSchedule(crashes=[ShardCrashSpec("ghost",
                                                      at_tick=4)])
        with pytest.raises(FleetError, match="unknown shard 'ghost'"):
            FleetRouter([ShardSpec("s0")], chaos=chaos)

    def test_identical_shards_share_platform_and_cache(self):
        router = FleetRouter(_two_shards()
                             + [ShardSpec("s2", platform_seed=11)])
        s0, s1, s2 = router.shards
        assert s0.platform is s1.platform
        assert s0.plan_cache is s1.plan_cache
        assert s2.platform is not s0.platform
        assert s2.plan_cache is not s0.plan_cache

    def test_each_shard_gets_its_own_breaker(self):
        router = FleetRouter(_two_shards())
        assert set(router.breakers) == {"s0", "s1"}
        assert (router.breakers["s0"]
                is not router.breakers["s1"])


class TestSubmission:
    def test_duplicate_tenant_name_rejected(self):
        router = FleetRouter(_two_shards())
        router.submit(_spec("t"))
        with pytest.raises(FleetError, match="already submitted"):
            router.submit(_spec("t"))

    def test_drain_without_start_rejected(self):
        router = FleetRouter(_two_shards())
        with pytest.raises(FleetError, match="never started"):
            router.drain(timeout_s=1.0)

    def test_double_start_rejected(self):
        router = FleetRouter([ShardSpec("s0")],
                             config=FleetConfig(max_ticks=2))
        router.start()
        try:
            with pytest.raises(FleetError, match="already started"):
                router.start()
        finally:
            router.drain(timeout_s=TIMEOUT_S)

    def test_submit_after_drain_rejected(self):
        router = FleetRouter([ShardSpec("s0")],
                             config=FleetConfig(max_ticks=2))
        router.run(timeout_s=TIMEOUT_S)
        with pytest.raises(FleetError, match="has drained"):
            router.submit(_spec("late"))


class TestSmallFleetRun:
    def test_empty_fleet_drains_immediately(self):
        router = FleetRouter(_two_shards())
        report = router.run(timeout_s=TIMEOUT_S)
        assert report.ticks == 1
        assert report.tenants == {}
        assert all(s["state"] == "healthy"
                   for s in report.shards.values())

    def test_quiet_run_completes_every_tenant(self):
        router = FleetRouter(_two_shards(),
                             config=FleetConfig(max_ticks=32))
        for i in range(3):
            router.submit(_spec(f"t{i}", seed=11 + i))
        report = router.run(timeout_s=TIMEOUT_S)
        assert all(m.status == "completed"
                   for m in report.tenants.values())
        assert report.counts["place"] == 3
        assert report.counts["complete"] == 3
        assert "failover" not in report.counts
        # Latency samples flowed up: windows * window_tasks items each.
        for metric in report.tenants.values():
            assert metric.windows_served == 2
            assert metric.p95_latency_s > 0.0

    def test_tick_budget_exhaustion_fails_running_tenants(self):
        router = FleetRouter([ShardSpec("s0")],
                             config=FleetConfig(max_ticks=2))
        router.submit(_spec("t", windows=50))
        report = router.run(timeout_s=TIMEOUT_S)
        assert report.tenants["t"].status == "failed"
        tenant = router.tenants["t"]
        assert "tick budget exhausted" in tenant.status_detail


class TestStepMode:
    def test_stepped_run_matches_threaded_run(self):
        def build():
            router = FleetRouter(_two_shards(),
                                 config=FleetConfig(max_ticks=32))
            for i in range(3):
                router.submit(_spec(f"t{i}", seed=11 + i))
            return router

        threaded = build().run(timeout_s=TIMEOUT_S)

        stepped = build()
        stepped.open_stepped()
        for tick in range(stepped.config.max_ticks):
            if stepped.step(tick):
                break
        report = stepped.close_stepped()
        assert report.to_dict() == threaded.to_dict()

    def test_step_requires_open_stepped(self):
        router = FleetRouter(_two_shards())
        with pytest.raises(FleetError, match="not in step mode"):
            router.step(0)
        with pytest.raises(FleetError, match="not in step mode"):
            router.close_stepped()

    def test_open_stepped_conflicts_with_start(self):
        router = FleetRouter([ShardSpec("s0")],
                             config=FleetConfig(max_ticks=2))
        router.open_stepped()
        try:
            with pytest.raises(FleetError, match="already started"):
                router.start()
        finally:
            router.close_stepped()

    def test_mid_run_submission_is_placed(self):
        # Open-loop ingress: a tenant submitted after ticking began is
        # picked up by a later placement phase.
        router = FleetRouter(_two_shards(),
                             config=FleetConfig(max_ticks=48))
        router.open_stepped()
        router.submit(_spec("early"))
        for tick in range(4):
            router.step(tick)
        router.submit(_spec("late", seed=13))
        tick = 4
        while not router.step(tick):
            tick += 1
        report = router.close_stepped()
        assert report.tenants["early"].status == "completed"
        assert report.tenants["late"].status == "completed"

    def test_close_stepped_settles_running_tenants(self):
        router = FleetRouter([ShardSpec("s0")],
                             config=FleetConfig(max_ticks=64))
        router.submit(_spec("t", windows=50))
        router.open_stepped()
        router.step(0)
        report = router.close_stepped(detail="driver budget spent")
        assert report.tenants["t"].status == "failed"
        assert "driver budget spent" in router.tenants["t"].status_detail

    def test_window_log_and_isolated_reference(self):
        router = FleetRouter(_two_shards(),
                             config=FleetConfig(max_ticks=32))
        router.submit(_spec("t"))
        report = router.run(timeout_s=TIMEOUT_S)
        assert len(router.window_log) == 2
        for entry in router.window_log:
            assert entry["tenant"] == "t"
            assert entry["latency_s"] > 0.0
        places = [e for e in report.timeline if e["event"] == "place"]
        assert places and all(e["isolated_s"] > 0.0 for e in places)


class TestBacklogPatience:
    def test_unplaceable_tenant_rejected_after_patience(self):
        # Both tenants insist on the single GPU of the only shard; the
        # second waits in the fleet backlog until patience expires.
        router = FleetRouter(
            [ShardSpec("s0")],
            config=FleetConfig(max_ticks=48, backlog_patience=2),
        )
        router.submit(_spec("holder", windows=12,
                            required_classes={"gpu"}))
        router.submit(_spec("waiter", windows=2,
                            required_classes={"gpu"}))
        report = router.run(timeout_s=TIMEOUT_S)
        assert report.tenants["holder"].status == "completed"
        assert report.tenants["waiter"].status == "rejected"
        assert "backlog" in router.tenants["waiter"].status_detail
        rejects = [e for e in report.timeline
                   if e["event"] == "reject"]
        assert [e["tenant"] for e in rejects] == ["waiter"]
        assert report.counts["reject"] == 1
