"""Constraint classes and their propagation rules.

The search engine (:mod:`repro.solver.search`) keeps a partial assignment
(``values[i]`` is 0, 1, or ``UNASSIGNED``).  Each constraint implements
``propagate``, which inspects the partial assignment and either:

* reports a conflict (the constraint cannot be satisfied any more),
* infers forced literals (unit propagation), or
* does nothing.

Three constraint families are enough for the BetterTogether formulation:

* :class:`Clause` - disjunction of literals.  Implications such as the
  contiguity constraint (C2) are compiled to clauses.
* :class:`ExactlyOne` / :class:`AtMostOne` - cardinality over positive
  literals (C1: one PU per stage).
* :class:`LinearLE` - pseudo-boolean inequality ``sum(w_i * lit_i) <= bound``
  used for the per-chunk runtime bounds (C3) and blocking clauses (C5).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import ModellingError
from repro.solver.literals import BoolVar, Literal, as_literal

UNASSIGNED = -1


class Constraint:
    """Base class for all constraints."""

    def variables(self) -> List[BoolVar]:
        """All variables mentioned by the constraint."""
        raise NotImplementedError

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        """Inspect a partial assignment.

        Args:
            values: Per-variable values, ``UNASSIGNED``/0/1, indexed by
                variable index.

        Returns:
            ``(consistent, forced)`` where ``forced`` is a list of
            ``(var_index, value)`` pairs implied by the constraint.  When
            ``consistent`` is False the constraint is violated and ``forced``
            is empty.
        """
        raise NotImplementedError

    def satisfied_by(self, values: Sequence[int]) -> bool:
        """Whether a *complete* assignment satisfies the constraint."""
        raise NotImplementedError


def _literal_state(lit: Literal, values: Sequence[int]) -> int:
    """Return 1 if the literal is true, 0 if false, UNASSIGNED otherwise."""
    value = values[lit.var.index]
    if value == UNASSIGNED:
        return UNASSIGNED
    return 1 if lit.value_under(value) else 0


def _forcing_value(lit: Literal, make_true: bool) -> int:
    """The variable value that makes ``lit`` evaluate to ``make_true``."""
    if make_true:
        return 0 if lit.negated else 1
    return 1 if lit.negated else 0


class Clause(Constraint):
    """Disjunction of literals: at least one literal must be true."""

    def __init__(self, literals: Iterable["BoolVar | Literal"]):
        self.literals = [as_literal(item) for item in literals]
        if not self.literals:
            raise ModellingError("a clause needs at least one literal")

    def variables(self) -> List[BoolVar]:
        return [lit.var for lit in self.literals]

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        unassigned: List[Literal] = []
        for lit in self.literals:
            state = _literal_state(lit, values)
            if state == 1:
                return True, []
            if state == UNASSIGNED:
                unassigned.append(lit)
        if not unassigned:
            return False, []
        if len(unassigned) == 1:
            lit = unassigned[0]
            return True, [(lit.var.index, _forcing_value(lit, True))]
        return True, []

    def satisfied_by(self, values: Sequence[int]) -> bool:
        return any(_literal_state(lit, values) == 1 for lit in self.literals)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "Clause(" + " | ".join(map(repr, self.literals)) + ")"


class AtMostOne(Constraint):
    """At most one of the given literals may be true."""

    def __init__(self, literals: Iterable["BoolVar | Literal"]):
        self.literals = [as_literal(item) for item in literals]

    def variables(self) -> List[BoolVar]:
        return [lit.var for lit in self.literals]

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        true_count = 0
        unassigned: List[Literal] = []
        for lit in self.literals:
            state = _literal_state(lit, values)
            if state == 1:
                true_count += 1
            elif state == UNASSIGNED:
                unassigned.append(lit)
        if true_count > 1:
            return False, []
        if true_count == 1 and unassigned:
            return True, [
                (lit.var.index, _forcing_value(lit, False)) for lit in unassigned
            ]
        return True, []

    def satisfied_by(self, values: Sequence[int]) -> bool:
        return sum(_literal_state(lit, values) == 1 for lit in self.literals) <= 1


class ExactlyOne(Constraint):
    """Exactly one of the given literals must be true (C1)."""

    def __init__(self, literals: Iterable["BoolVar | Literal"]):
        self.literals = [as_literal(item) for item in literals]
        if not self.literals:
            raise ModellingError("exactly-one needs at least one literal")

    def variables(self) -> List[BoolVar]:
        return [lit.var for lit in self.literals]

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        true_count = 0
        unassigned: List[Literal] = []
        for lit in self.literals:
            state = _literal_state(lit, values)
            if state == 1:
                true_count += 1
            elif state == UNASSIGNED:
                unassigned.append(lit)
        if true_count > 1:
            return False, []
        if true_count == 1:
            return True, [
                (lit.var.index, _forcing_value(lit, False)) for lit in unassigned
            ]
        # No literal true yet.
        if not unassigned:
            return False, []
        if len(unassigned) == 1:
            lit = unassigned[0]
            return True, [(lit.var.index, _forcing_value(lit, True))]
        return True, []

    def satisfied_by(self, values: Sequence[int]) -> bool:
        return sum(_literal_state(lit, values) == 1 for lit in self.literals) == 1


class LinearLE(Constraint):
    """Pseudo-boolean inequality ``sum(weight_i * [lit_i is true]) <= bound``.

    Weights must be non-negative; inequalities with negative weights can be
    rewritten by negating the corresponding literal and shifting the bound.
    """

    def __init__(
        self,
        terms: Iterable[Tuple["BoolVar | Literal", float]],
        bound: float,
    ):
        self.terms: List[Tuple[Literal, float]] = []
        for item, weight in terms:
            if weight < 0:
                raise ModellingError(
                    "LinearLE weights must be non-negative; negate the "
                    "literal and shift the bound instead"
                )
            self.terms.append((as_literal(item), float(weight)))
        self.bound = float(bound)

    def variables(self) -> List[BoolVar]:
        return [lit.var for lit, _ in self.terms]

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        committed = 0.0
        pending: List[Tuple[Literal, float]] = []
        for lit, weight in self.terms:
            state = _literal_state(lit, values)
            if state == 1:
                committed += weight
            elif state == UNASSIGNED:
                pending.append((lit, weight))
        if committed > self.bound + 1e-12:
            return False, []
        slack = self.bound - committed
        forced = [
            (lit.var.index, _forcing_value(lit, False))
            for lit, weight in pending
            if weight > slack + 1e-12
        ]
        return True, forced

    def satisfied_by(self, values: Sequence[int]) -> bool:
        total = sum(
            weight
            for lit, weight in self.terms
            if _literal_state(lit, values) == 1
        )
        return total <= self.bound + 1e-12

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        body = " + ".join(f"{w}*{lit!r}" for lit, w in self.terms)
        return f"LinearLE({body} <= {self.bound})"


class LinearGE(Constraint):
    """Pseudo-boolean inequality ``sum(weight_i * [lit_i is true]) >= bound``."""

    def __init__(
        self,
        terms: Iterable[Tuple["BoolVar | Literal", float]],
        bound: float,
    ):
        self.terms = []
        for item, weight in terms:
            if weight < 0:
                raise ModellingError("LinearGE weights must be non-negative")
            self.terms.append((as_literal(item), float(weight)))
        self.bound = float(bound)

    def variables(self) -> List[BoolVar]:
        return [lit.var for lit, _ in self.terms]

    def propagate(self, values: List[int]) -> Tuple[bool, List[Tuple[int, int]]]:
        committed = 0.0
        potential = 0.0
        pending: List[Tuple[Literal, float]] = []
        for lit, weight in self.terms:
            state = _literal_state(lit, values)
            if state == 1:
                committed += weight
                potential += weight
            elif state == UNASSIGNED:
                potential += weight
                pending.append((lit, weight))
        if potential < self.bound - 1e-12:
            return False, []
        deficit = self.bound - committed
        # A pending literal is forced true when losing it makes the bound
        # unreachable.
        forced = [
            (lit.var.index, _forcing_value(lit, True))
            for lit, weight in pending
            if potential - weight < self.bound - 1e-12
        ]
        del deficit
        return True, forced

    def satisfied_by(self, values: Sequence[int]) -> bool:
        total = sum(
            weight
            for lit, weight in self.terms
            if _literal_state(lit, values) == 1
        )
        return total >= self.bound - 1e-12


def implication(antecedents: Iterable["BoolVar | Literal"],
                consequent: "BoolVar | Literal") -> Clause:
    """Compile ``(a1 & a2 & ...) => c`` to its clause form.

    This is how the contiguity constraint (C2) is expressed:
    ``(x[i,c] & x[k,c]) => x[j,c]`` becomes
    ``~x[i,c] | ~x[k,c] | x[j,c]``.
    """
    literals = [~as_literal(a) for a in antecedents]
    literals.append(as_literal(consequent))
    return Clause(literals)
