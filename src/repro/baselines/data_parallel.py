"""Data-parallel heterogeneous baseline (paper section 1).

The paper's introduction dismisses the classic alternative to pipelining:
split each stage's *data* across every PU proportionally to its speed
([24] in the paper).  It is suboptimal because every PU must execute every
stage - including the ones it is terrible at (the GPU still sorts, the
little cores still run dense convolutions).

This module provides that baseline analytically so the claim can be
checked: with a work split that equalizes finish times, a stage's
duration is the harmonic combination of the per-PU co-run latencies, and
the task latency is the sum over stages (data-parallel stages cannot
overlap across tasks the way pipeline chunks do without additional
buffering machinery; we model the paper's synchronous splits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.stage import Application
from repro.errors import SchedulingError
from repro.soc.platform import Platform


@dataclass(frozen=True)
class DataParallelResult:
    """Analytic data-parallel execution estimate."""

    application: str
    platform: str
    per_stage_s: Dict[str, float]
    fractions: Dict[str, Dict[str, float]]

    @property
    def task_latency_s(self) -> float:
        return sum(self.per_stage_s.values())


def data_parallel_baseline(
    application: Application,
    platform: Platform,
    pu_classes: Sequence[str] = (),
) -> DataParallelResult:
    """Estimate the optimal-split data-parallel execution.

    For each stage, every PU ``p`` receives a fraction ``f_p`` of the data
    chosen so all PUs finish together under full co-run load (every PU is
    busy during every stage - the defining property of this strategy):

    ``f_p = (1 / t_p) / sum_q (1 / t_q)`` and the stage takes
    ``1 / sum_q (1 / t_q)`` where ``t_q`` is the stage's co-run latency
    on PU ``q``.
    """
    pus = tuple(pu_classes) or platform.schedulable_classes()
    if not pus:
        raise SchedulingError("no PUs to split data across")
    per_stage: Dict[str, float] = {}
    fractions: Dict[str, Dict[str, float]] = {}
    for stage in application.stages:
        demands = {
            pu: platform.bandwidth_demand(stage.work, pu) for pu in pus
        }
        total_demand = sum(demands.values())
        # Split a PU's co-run time into the fixed dispatch/launch
        # overhead (paid in full by *every* participating PU, every
        # stage - it cannot be fractionally split) and the divisible
        # work portion.
        overheads: Dict[str, float] = {}
        work: Dict[str, float] = {}
        for pu in pus:
            breakdown = platform.isolated_breakdown(stage.work, pu)
            total = platform.true_time(
                stage.work,
                pu,
                co_load=1.0,
                other_demand_gbps=total_demand - demands[pu],
            )
            overheads[pu] = breakdown.overhead_s
            work[pu] = max(total - breakdown.overhead_s, 1e-12)
        # For each PU subset, the equal-finish split gives
        # T = (1 + sum o_q / w_q) / sum 1 / w_q; pick the best subset
        # (a PU whose overhead exceeds T is worth excluding entirely).
        best_time = float("inf")
        best_subset: Tuple[str, ...] = ()
        for mask in range(1, 1 << len(pus)):
            subset = tuple(
                pu for bit, pu in enumerate(pus) if mask >> bit & 1
            )
            inv = sum(1.0 / work[pu] for pu in subset)
            stage_time = (
                1.0 + sum(overheads[pu] / work[pu] for pu in subset)
            ) / inv
            if any(stage_time < overheads[pu] for pu in subset):
                continue  # infeasible: a member cannot even start
            if stage_time < best_time:
                best_time = stage_time
                best_subset = subset
        per_stage[stage.name] = best_time
        fractions[stage.name] = {
            pu: (
                (best_time - overheads[pu]) / work[pu]
                if pu in best_subset else 0.0
            )
            for pu in pus
        }
    return DataParallelResult(
        application=application.name,
        platform=platform.name,
        per_stage_s=per_stage,
        fractions=fractions,
    )


def split_evenness(result: DataParallelResult) -> Dict[str, float]:
    """Max/min fraction ratio per stage among *participating* PUs -
    large values show PUs being forced onto poorly-suited work (the
    paper's argument against data parallelism).  PUs the optimal split
    excluded entirely (overhead exceeds any useful share) are the same
    argument taken to its limit; :func:`excluded_pus` reports them."""
    out: Dict[str, float] = {}
    for stage, fracs in result.fractions.items():
        values: List[float] = [v for v in fracs.values() if v > 0]
        out[stage] = max(values) / max(min(values), 1e-12)
    return out


def excluded_pus(result: DataParallelResult) -> Dict[str, List[str]]:
    """PUs the optimal split gives no work at all, per stage."""
    return {
        stage: [pu for pu, fraction in fracs.items() if fraction == 0.0]
        for stage, fracs in result.fractions.items()
    }
