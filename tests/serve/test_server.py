"""PipelineServer lifecycle: admission, queue retry, drain, close-out."""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.errors import ServeError
from repro.serve import (
    COMPLETED,
    REJECTED,
    DriftSpec,
    PipelineServer,
    ServerConfig,
    TenantSpec,
)


def make_app(seed):
    return build_synthetic_application(seed=seed, stage_count=3)


def make_server(platform, **config_kwargs):
    config_kwargs.setdefault("max_ticks", 16)
    config_kwargs.setdefault("profiling_repetitions", 2)
    return PipelineServer(
        platform, seed=7, config=ServerConfig(**config_kwargs)
    )


class TestDriftSpec:
    def test_negative_start_rejected(self):
        with pytest.raises(ServeError, match="start_tick"):
            DriftSpec(start_tick=-1)

    def test_end_must_follow_start(self):
        with pytest.raises(ServeError, match="end_tick"):
            DriftSpec(start_tick=3, end_tick=3)

    def test_active_window(self):
        drift = DriftSpec(start_tick=2, end_tick=4,
                          busy={"big": 0.5})
        assert [drift.active_at(t) for t in range(5)] == [
            False, False, True, True, False
        ]

    def test_open_ended_drift(self):
        drift = DriftSpec(start_tick=2)
        assert drift.active_at(10_000)


class TestValidation:
    def test_config_needs_a_tick(self):
        with pytest.raises(ServeError, match="max_ticks"):
            ServerConfig(max_ticks=0)

    def test_duplicate_name_rejected(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1)))
        with pytest.raises(ServeError, match="already submitted"):
            server.submit(TenantSpec(name="a",
                                     application=make_app(2)))

    def test_drift_after_start_rejected(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1),
                                 windows=1))
        server.start()
        try:
            with pytest.raises(ServeError, match="before start"):
                server.inject_drift(DriftSpec(start_tick=1))
        finally:
            server.drain(timeout_s=120.0)

    def test_drain_requires_start(self, platform):
        with pytest.raises(ServeError, match="never started"):
            make_server(platform).drain(timeout_s=1.0)

    def test_submit_after_drain_rejected(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1),
                                 windows=1))
        server.run(timeout_s=120.0)
        with pytest.raises(ServeError, match="drained"):
            server.submit(TenantSpec(name="b",
                                     application=make_app(2)))


class TestServing:
    def test_two_tenants_complete(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1),
                                 windows=2, priority=1))
        server.submit(TenantSpec(name="b", application=make_app(2),
                                 windows=3))
        report = server.run(timeout_s=180.0)
        assert report.tenants["a"].status == COMPLETED
        assert report.tenants["b"].status == COMPLETED
        assert report.tenants["a"].windows_served == 2
        assert report.tenants["b"].windows_served == 3
        admits = [e for e in report.timeline if e["event"] == "admit"]
        assert [e["tenant"] for e in admits] == ["a", "b"]
        assert all(e["tick"] == 0 for e in admits)

    def test_trace_spans_are_tenant_tagged(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1),
                                 windows=1))
        server.run(timeout_s=120.0)
        assert server.trace_spans
        assert {span.tenant for span in server.trace_spans} == {"a"}

    def test_queued_tenant_admitted_after_release(self, platform):
        server = make_server(platform, queue_capacity=1)
        server.submit(TenantSpec(
            name="first", application=make_app(1), windows=2,
            required_classes=frozenset({"gpu"}),
        ))
        server.submit(TenantSpec(
            name="second", application=make_app(1), windows=2,
            required_classes=frozenset({"gpu"}),
        ))
        report = server.run(timeout_s=180.0)
        assert report.tenants["first"].status == COMPLETED
        assert report.tenants["second"].status == COMPLETED
        queue_events = [e for e in report.timeline
                        if e["event"] == "queue"]
        assert [e["tenant"] for e in queue_events] == ["second"]
        # The retry admitted it only once the GPU was free again.
        second_admit = next(
            e for e in report.timeline
            if e["event"] == "admit" and e["tenant"] == "second"
        )
        assert second_admit["tick"] >= 2

    def test_tick_budget_exhaustion_fails_loudly(self, platform):
        server = make_server(platform, max_ticks=2)
        server.submit(TenantSpec(name="slow", application=make_app(1),
                                 windows=50))
        report = server.run(timeout_s=120.0)
        assert report.tenants["slow"].status == "failed"
        record = server.records["slow"]
        assert "tick budget exhausted" in record.status_detail
        # Close-out released the partition.
        assert not server.placement.partitions

    def test_undrained_queue_becomes_backpressure_reject(
        self, platform
    ):
        server = make_server(platform, max_ticks=1, queue_capacity=1)
        server.submit(TenantSpec(
            name="first", application=make_app(1), windows=5,
            required_classes=frozenset({"gpu"}),
        ))
        server.submit(TenantSpec(
            name="second", application=make_app(1), windows=5,
            required_classes=frozenset({"gpu"}),
        ))
        server.run(timeout_s=120.0)
        assert server.records["second"].status == REJECTED
        assert "backpressure" in server.records["second"].status_detail

    def test_queue_age_out_rejects_oldest_with_structured_reason(
        self, platform
    ):
        # "first" holds the GPU for 12 windows; "second" queues behind
        # it and must age out after queue_patience ticks instead of
        # waiting out the whole run.
        server = make_server(platform, max_ticks=32, queue_capacity=1,
                             queue_patience=3)
        server.submit(TenantSpec(
            name="first", application=make_app(1), windows=12,
            required_classes=frozenset({"gpu"}),
        ))
        server.submit(TenantSpec(
            name="second", application=make_app(1), windows=2,
            required_classes=frozenset({"gpu"}),
        ))
        report = server.run(timeout_s=180.0)
        assert report.tenants["first"].status == COMPLETED
        assert report.tenants["second"].status == REJECTED
        detail = server.records["second"].status_detail
        assert "aged out" in detail and "patience 3" in detail
        evicts = [e for e in report.timeline
                  if e["event"] == "queue_evict"]
        assert [e["tenant"] for e in evicts] == ["second"]
        assert evicts[0]["waited_ticks"] >= 3

    def test_queue_patience_validation(self):
        with pytest.raises(ServeError, match="queue_patience"):
            ServerConfig(queue_patience=0)

    def test_queue_age_out_disabled_by_default(self, platform):
        # Without queue_patience the queued tenant waits until the GPU
        # frees and still completes - the pre-age-out behaviour.
        server = make_server(platform, max_ticks=32, queue_capacity=1)
        server.submit(TenantSpec(
            name="first", application=make_app(1), windows=12,
            required_classes=frozenset({"gpu"}),
        ))
        server.submit(TenantSpec(
            name="second", application=make_app(1), windows=2,
            required_classes=frozenset({"gpu"}),
        ))
        report = server.run(timeout_s=180.0)
        assert report.tenants["second"].status == COMPLETED
        assert not [e for e in report.timeline
                    if e["event"] == "queue_evict"]

    def test_report_is_available_midway(self, platform):
        server = make_server(platform)
        server.submit(TenantSpec(name="a", application=make_app(1),
                                 windows=1))
        report = server.run(timeout_s=120.0)
        assert report.platform == platform.name
        assert report.plan_cache["entries"] >= 1
        assert report.ticks >= 1
