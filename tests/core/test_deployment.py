"""Tests for rate-constrained, energy-optimal deployment selection."""

import pytest

from repro.apps import build_octree_application
from repro.core import select_for_rate
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.errors import SchedulingError
from repro.soc import get_platform


@pytest.fixture(scope="module")
def setting():
    platform = get_platform("pixel7a")
    app = build_octree_application(n_points=20_000)
    table = BTProfiler(platform, repetitions=3).profile(app)
    optimization = BTOptimizer(
        app, table.restricted(platform.schedulable_classes()), k=8
    ).optimize()
    return app, platform, optimization


class TestSelection:
    def test_slack_rate_picks_energy_not_latency(self, setting):
        """Well below saturation every candidate keeps up, so the
        selection criterion flips from latency to energy."""
        app, platform, optimization = setting
        choice = select_for_rate(app, platform, optimization,
                                 rate_hz=50.0, n_tasks=15)
        assert choice.meets_rate
        assert all(trial.keeps_up for trial in choice.trials)
        best_energy = min(
            trial.energy_per_task_j for trial in choice.trials
        )
        assert choice.selected_trial.energy_per_task_j == pytest.approx(
            best_energy
        )

    def test_impossible_rate_falls_back_to_fastest(self, setting):
        app, platform, optimization = setting
        choice = select_for_rate(app, platform, optimization,
                                 rate_hz=1e7, n_tasks=15)
        assert not choice.meets_rate
        fastest = min(
            trial.worst_latency_s for trial in choice.trials
        )
        assert choice.selected_trial.worst_latency_s == pytest.approx(
            fastest
        )

    def test_moderate_rate_filters_slow_candidates(self, setting):
        """Near the fastest candidate's saturation point, only a subset
        keeps up - the selection must come from that subset."""
        app, platform, optimization = setting
        # Probe: fastest candidate's backlogged rate.
        probe = select_for_rate(app, platform, optimization,
                                rate_hz=50.0, n_tasks=15)
        fastest_latency = min(
            trial.worst_latency_s for trial in probe.trials
        )
        rate = 0.8 / fastest_latency
        choice = select_for_rate(app, platform, optimization,
                                 rate_hz=rate, n_tasks=15)
        if choice.meets_rate:
            assert choice.selected_trial.keeps_up

    def test_accepts_plain_candidate_list(self, setting):
        app, platform, optimization = setting
        choice = select_for_rate(
            app, platform, optimization.candidates[:3],
            rate_hz=50.0, n_tasks=10,
        )
        assert len(choice.trials) == 3

    def test_validation(self, setting):
        app, platform, optimization = setting
        with pytest.raises(SchedulingError):
            select_for_rate(app, platform, optimization, rate_hz=0.0)
        with pytest.raises(SchedulingError):
            select_for_rate(app, platform, [], rate_hz=10.0)

    def test_deterministic(self, setting):
        app, platform, optimization = setting
        a = select_for_rate(app, platform, optimization, rate_hz=100.0,
                            n_tasks=10)
        b = select_for_rate(app, platform, optimization, rate_hz=100.0,
                            n_tasks=10)
        assert (a.selected.schedule.assignments
                == b.selected.schedule.assignments)
