"""Ablation: how BetterTogether's gain scales with workload heterogeneity.

Using the synthetic-pipeline generator's heterogeneity knob: at 0 every
stage is PU-agnostic (only pipeline balance helps); at 1 stages carry
strong, conflicting PU affinities (the paper's sweet spot).  The
framework's measured gain over the best homogeneous baseline should grow
with the knob - evidence that the gains in Fig. 4 come from exploiting
heterogeneity, not from an artifact of the harness.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_synthetic_application
from repro.baselines import measure_baselines
from repro.core.framework import BetterTogether
from repro.eval.metrics import geometric_mean
from repro.soc import get_platform

LEVELS = (0.0, 0.5, 1.0)
SEEDS = range(4)


def test_gain_grows_with_heterogeneity(benchmark):
    platform = get_platform("pixel7a")

    def sweep():
        gains = {}
        for level in LEVELS:
            speedups = []
            for seed in SEEDS:
                app = build_synthetic_application(
                    seed=seed, stage_count=8, heterogeneity=level
                )
                plan = BetterTogether(platform, repetitions=5, k=10,
                                      eval_tasks=12).run(app)
                baseline = measure_baselines(app, platform, n_tasks=12)
                speedups.append(
                    baseline.best_latency_s / plan.measured_latency_s
                )
            gains[level] = geometric_mean(speedups)
        return gains

    gains = run_once(benchmark, sweep)
    print("\nheterogeneity -> geomean BT speedup over best baseline:")
    for level, gain in sorted(gains.items()):
        print(f"  h={level:.1f}: {gain:.2f}x")
    assert gains[1.0] > gains[0.0]
    # Even homogeneous-affinity pipelines gain a little from pure
    # pipeline balance, but never lose.
    assert gains[0.0] > 0.95
