"""Sanctioned patterns the flow analysis must NOT flag.

Every function here handles a nondeterminism source but launders it
before any sink: this file is the false-positive guard - it must
analyse completely clean.
"""

import time

import numpy as np


def dump_sorted_names(pu_classes, path):
    # sorted() fixes a total order: the set's iteration order never
    # reaches the artifact.
    names = set(pu_classes)
    atomic_write_text(path, "\n".join(sorted(names)))


def summarise_set(values):
    # Order-insensitive reductions over a set are deterministic.
    pool = set(values)
    return {"count": len(pool), "lo": min(pool), "hi": max(pool)}


def save_summary(values, path):
    write_json_report(path, summarise_set(values))


def seeded_draws(seed, path):
    # A seeded generator is exactly as deterministic as its seed.
    rng = np.random.default_rng(seed)
    write_json_report(path, {"noise": [rng.normal() for _ in range(4)]})


def wait_for_quiescence(poll):
    # time.monotonic is the sanctioned deadline clock: its value steers
    # control flow only and never lands in an artifact.
    deadline = time.monotonic() + 1.0
    while time.monotonic() < deadline:
        if poll():
            return True
    return False


def measure_for_logs(work):
    # A wall-clock read that goes nowhere near a sink is fine.
    start = time.perf_counter()
    work()
    return time.perf_counter() - start
