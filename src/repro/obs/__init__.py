"""repro.obs - unified observability: tracer, metrics, flight recorder.

One deterministic event spine across every layer (profiler, solver,
autotuner, DES runtime, threaded back-end, serving), with exporters to
Chrome/Perfetto trace JSON and the ASCII Gantt.  On top of the spine:
per-window interference blame decomposition (:mod:`~repro.obs.
attribution`), bounded per-tick time series (:mod:`~repro.obs.
timeseries`) and multi-window SLO burn-rate alerts (:mod:`~repro.obs.
alerts`).  All instruments are disabled by default; wrap a scope in
:func:`capture` to record.
"""

from repro.obs.alerts import BurnAlert, BurnRateEvaluator, BurnRateRule
from repro.obs.attribution import (
    BlameMatrix,
    BlameShare,
    ChunkLoad,
    decompose,
    steady_interval,
    top_offenders,
)
from repro.obs.export import chrome_trace, export_gantt, write_trace
from repro.obs.metrics import (
    MetricsRegistry,
    metrics,
    percentile,
    set_metrics,
)
from repro.obs.recorder import FlightRecorder, recorder, set_recorder
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracer import (
    CONTROL,
    ROOT,
    VIRTUAL,
    Capture,
    TraceEvent,
    Tracer,
    capture,
    set_tracer,
    tracer,
)

__all__ = [
    "CONTROL",
    "ROOT",
    "VIRTUAL",
    "BlameMatrix",
    "BlameShare",
    "BurnAlert",
    "BurnRateEvaluator",
    "BurnRateRule",
    "Capture",
    "ChunkLoad",
    "FlightRecorder",
    "MetricsRegistry",
    "TimeSeriesStore",
    "TraceEvent",
    "Tracer",
    "capture",
    "chrome_trace",
    "decompose",
    "export_gantt",
    "metrics",
    "percentile",
    "recorder",
    "set_metrics",
    "set_recorder",
    "set_tracer",
    "steady_interval",
    "top_offenders",
    "tracer",
    "write_trace",
]
