"""Tables 1 and 2: application characteristics and platform specs.

Static descriptions regenerated from the live objects, so the docs can
never drift from the code.
"""

from __future__ import annotations

from typing import List

from repro.eval.experiments.common import (
    APP_ORDER,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
)
from repro.eval.metrics import format_table


def format_table1(scale: ExperimentScale = None) -> str:
    scale = scale or ExperimentScale.paper()
    applications = build_applications(scale)
    rows: List[List[str]] = [
        ["Application", "Input", "Stages", "Characteristics"]
    ]
    for name in APP_ORDER:
        app = applications[name]
        rows.append([
            app.name, app.input_kind, str(app.num_stages), app.description,
        ])
    return "Table 1 - evaluated applications\n" + format_table(rows)


def format_table2() -> str:
    rows: List[List[str]] = [["Device", "CPU (cores @ GHz)", "GPU"]]
    for platform in evaluation_platforms():
        cpu_text = "; ".join(
            f"{c.cores}x {c.model} @ {c.freq_ghz:.2f}"
            for c in platform.clusters.values()
        )
        gpu_text = platform.gpu.model if platform.gpu else "-"
        rows.append([platform.display_name, cpu_text, gpu_text])
    return "Table 2 - evaluated platforms\n" + format_table(rows)
