"""Rate-constrained deployment selection (extension).

A real edge deployment rarely wants "the fastest pipeline" - it wants
*a pipeline that keeps up with the sensor at minimum energy*.  With the
candidate set, the DES arrival process, and the energy model in place,
that selection is one function:

:func:`select_for_rate` streams each candidate at the target input rate,
discards those whose end-to-end latency diverges (the queue grows), and
returns the lowest-energy survivor.  When nothing keeps up it falls back
to the fastest candidate and says so - the caller's cue to drop the
sensor rate or the work size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.stage import Application
from repro.errors import SchedulingError
from repro.soc.platform import Platform


@dataclass(frozen=True)
class RateTrial:
    """One candidate's behaviour at the target rate."""

    candidate: ScheduleCandidate
    keeps_up: bool
    worst_latency_s: float
    energy_per_task_j: float


@dataclass
class RateConstrainedChoice:
    """Outcome of rate-constrained selection.

    Attributes:
        selected: The deployed candidate.
        meets_rate: Whether it actually sustains the target rate; when
            False, ``selected`` is the fastest available candidate and
            the deployment is over-driven.
        trials: Every candidate's trial, in rank order.
    """

    selected: ScheduleCandidate
    meets_rate: bool
    trials: List[RateTrial]

    @property
    def selected_trial(self) -> RateTrial:
        """The selected candidate's own trial record."""
        for trial in self.trials:
            if trial.candidate is self.selected:
                return trial
        raise SchedulingError("selected candidate missing from trials")


def select_for_rate(
    application: Application,
    platform: Platform,
    candidates: "OptimizationResult | Sequence[ScheduleCandidate]",
    rate_hz: float,
    n_tasks: int = 30,
) -> RateConstrainedChoice:
    """Pick the lowest-energy candidate that sustains ``rate_hz``.

    Args:
        application / platform: The deployment target.
        candidates: Level-2 output (an :class:`OptimizationResult` or a
            plain candidate sequence).
        rate_hz: Task arrival rate to sustain.
        n_tasks: Tasks streamed per trial.
    """
    from repro.runtime.simulator import (
        SimWindow,
        SimulatedPipelineExecutor,
        simulate_batch,
    )
    from repro.soc.energy import estimate_energy

    if rate_hz <= 0:
        raise SchedulingError("rate_hz must be positive")
    pool = (
        candidates.candidates
        if isinstance(candidates, OptimizationResult)
        else list(candidates)
    )
    if not pool:
        raise SchedulingError("no candidates to select from")

    period = 1.0 / rate_hz
    results = simulate_batch([
        SimWindow(
            SimulatedPipelineExecutor(
                application, candidate.schedule.chunks(), platform
            ),
            n_tasks,
            arrival_period_s=period,
        )
        for candidate in pool
    ])
    trials: List[RateTrial] = []
    for candidate, result in zip(pool, results):
        energy = estimate_energy(result, platform)
        trials.append(
            RateTrial(
                candidate=candidate,
                keeps_up=result.keeps_up_with_arrivals(),
                worst_latency_s=max(result.end_to_end_latencies_s()),
                energy_per_task_j=energy.per_task_j,
            )
        )

    survivors = [trial for trial in trials if trial.keeps_up]
    if survivors:
        best = min(survivors, key=lambda t: t.energy_per_task_j)
        return RateConstrainedChoice(
            selected=best.candidate, meets_rate=True, trials=trials
        )
    # Nothing sustains the rate: fall back to the fastest (the least-bad
    # over-driven deployment) and report the miss.
    fastest = min(trials, key=lambda t: t.worst_latency_s)
    return RateConstrainedChoice(
        selected=fastest.candidate, meets_rate=False, trials=trials
    )
