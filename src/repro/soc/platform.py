"""The virtual SoC platform: PUs + UMA memory + interference + timers.

A :class:`Platform` is the ground-truth oracle of the reproduction.  Every
"measured" number in the experiments ultimately comes from
:meth:`Platform.true_time` (possibly integrated over time by the
discrete-event pipeline simulator) plus deterministic measurement noise.
The profiler, optimizer and implementer only ever observe noisy times -
they never read the model parameters - which preserves the paper's
black-box methodology (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import PlatformError
from repro.soc.affinity import AffinityMap
from repro.soc.cost_model import CostBreakdown, pu_cost
from repro.soc.interference import InterferenceModel
from repro.soc.pu import GPU, CpuCluster, Gpu
from repro.soc.timer import MeasurementNoise
from repro.soc.workprofile import WorkProfile


@dataclass
class Platform:
    """A complete edge SoC description (paper Table 2 analogue).

    Attributes:
        name: Registry key, e.g. ``pixel7a``.
        display_name: e.g. ``Google Pixel 7a``.
        soc_model: Marketing SoC name.
        clusters: CPU clusters keyed by PU class (``big``/``medium``/
            ``little``).
        gpu: The integrated GPU, or ``None`` for CPU-only parts.
        interference: Contention + DVFS model.
        affinity: Thread-affinity map (which classes are schedulable).
        noise: Measurement-noise source for all virtual timers.
        os_name: Informational.
    """

    name: str
    display_name: str
    soc_model: str
    clusters: Dict[str, CpuCluster]
    gpu: Optional[Gpu]
    interference: InterferenceModel
    affinity: AffinityMap
    noise: MeasurementNoise = field(default_factory=MeasurementNoise)
    os_name: str = "Linux"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise PlatformError("a platform needs at least one CPU cluster")
        for pu_class, cluster in self.clusters.items():
            if cluster.pu_class != pu_class:
                raise PlatformError(
                    f"cluster keyed {pu_class!r} declares class "
                    f"{cluster.pu_class!r}"
                )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def pu(self, pu_class: str) -> "CpuCluster | Gpu":
        """The PU object for a class name."""
        if pu_class == GPU:
            if self.gpu is None:
                raise PlatformError(f"{self.name} has no GPU")
            return self.gpu
        try:
            return self.clusters[pu_class]
        except KeyError:
            raise PlatformError(
                f"{self.name} has no PU class {pu_class!r}"
            ) from None

    def pu_classes(self) -> Tuple[str, ...]:
        """Every PU class physically present (profiling covers all)."""
        classes = tuple(self.clusters)
        if self.gpu is not None:
            classes = classes + (GPU,)
        return classes

    def schedulable_classes(self) -> Tuple[str, ...]:
        """PU classes the optimizer may target (pinnable only)."""
        classes = []
        for pu_class in self.affinity.schedulable_classes():
            if pu_class == GPU:
                if self.gpu is not None:
                    classes.append(pu_class)
            elif pu_class in self.clusters:
                classes.append(pu_class)
        return tuple(classes)

    def num_other_pus(self, pu_class: str) -> int:
        """How many *other* PU classes exist - the co-load denominator."""
        return len(self.pu_classes()) - (1 if pu_class in self.pu_classes() else 0)

    # ------------------------------------------------------------------
    # Ground-truth timing
    # ------------------------------------------------------------------
    def isolated_breakdown(
        self, work: WorkProfile, pu_class: str
    ) -> CostBreakdown:
        """Roofline cost decomposition on an otherwise idle SoC."""
        return pu_cost(work, self.pu(pu_class))

    def isolated_time(self, work: WorkProfile, pu_class: str) -> float:
        """Isolated wall-clock seconds for one invocation."""
        return self.isolated_breakdown(work, pu_class).total_s

    def bandwidth_demand(self, work: WorkProfile, pu_class: str) -> float:
        """Average GB/s the kernel draws while running in isolation."""
        breakdown = self.isolated_breakdown(work, pu_class)
        return breakdown.demand_bw_gbps(work.bytes_moved)

    def true_time(
        self,
        work: WorkProfile,
        pu_class: str,
        co_load: float = 0.0,
        other_demand_gbps: float = 0.0,
    ) -> float:
        """Wall-clock seconds under a *steady* co-run condition.

        Args:
            work: The kernel invocation.
            pu_class: Where it runs.
            co_load: Fraction of the other PUs concurrently busy (0 =
                isolated, 1 = the paper's interference-heavy condition).
            other_demand_gbps: Total DRAM bandwidth drawn by co-runners.

        The fixed dispatch/launch overhead does not scale with
        interference; only the overlapped compute/memory portion does.
        """
        breakdown = self.isolated_breakdown(work, pu_class)
        overlapped = max(breakdown.compute_s, breakdown.memory_s)
        demand = breakdown.demand_bw_gbps(work.bytes_moved)
        multiplier = self.interference.speed_multiplier(
            pu_class=pu_class,
            memory_boundedness=breakdown.memory_boundedness,
            demand_gbps=demand,
            total_demand_gbps=demand + other_demand_gbps,
            co_load=co_load,
        )
        return overlapped / multiplier + breakdown.overhead_s

    def instantaneous_rate(
        self,
        memory_boundedness: float,
        pu_class: str,
        demand_gbps: float,
        total_demand_gbps: float,
        co_load: float,
    ) -> float:
        """Progress-rate multiplier used by the discrete-event simulator."""
        return self.interference.speed_multiplier(
            pu_class=pu_class,
            memory_boundedness=memory_boundedness,
            demand_gbps=demand_gbps,
            total_demand_gbps=total_demand_gbps,
            co_load=co_load,
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure(
        self, true_seconds: float, rng: np.random.Generator
    ) -> float:
        """One noisy timer observation of a true duration."""
        return self.noise.perturb(true_seconds, rng)

    def measurement_rng(self, *key: object) -> np.random.Generator:
        """Deterministic RNG stream keyed by (platform, *key)."""
        return self.noise.rng(self.name, *key)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line hardware summary (Table 2 style)."""
        lines = [f"{self.display_name} ({self.soc_model}, {self.os_name})"]
        for pu_class, cluster in self.clusters.items():
            lines.append(
                f"  {pu_class}: {cluster.cores}x {cluster.model} @ "
                f"{cluster.freq_ghz:.2f} GHz "
                f"({cluster.peak_gflops:.0f} GFLOP/s)"
            )
        if self.gpu is not None:
            lines.append(
                f"  gpu: {self.gpu.model} ({self.gpu.api}, "
                f"{self.gpu.peak_gflops:.0f} GFLOP/s)"
            )
        lines.append(
            f"  DRAM: {self.interference.dram_bw_gbps:.0f} GB/s shared (UMA)"
        )
        return "\n".join(lines)
