"""The seeded fleet soak: one scenario behind CLI, CI, and tests.

Mirrors :mod:`repro.serve.scenario` one level up: a single scenario
definition drives ``repro fleet``'s demo mode, the CI ``fleet-chaos``
job, and the acceptance soak test, so the fleet determinism guarantee
is exercised on exactly what ships.

The default soak packs twelve tenants onto four pixel7a shards and
throws one of each failure shape at the fleet mid-run:

* ``soc2`` goes **gray** over ticks [8, 16): it keeps serving but stops
  heartbeating, so the health monitor must declare it dead on beat
  evidence alone and the coordinator must drain a *live* server;
* ``soc1`` **crashes** at tick 14 and rejoins at tick 20 as a fresh
  generation, re-entering service through the half-open breaker;
* ``soc3`` **degrades** from tick 18 (a 90% brownout of every PU class
  plus DRAM pressure): the shard's own rescheduler cannot flee - every
  class is hit - so the fleet's SLO-breach failover is the only way
  its tenants recover.

With failover enabled every non-shed tenant finishes on a surviving
shard; with it disabled, soc1's tenants are lost outright and soc3's
survivors drag their degraded windows into the fleet-wide p95 - the
gap the acceptance test asserts is strictly positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.apps.synthetic import build_synthetic_application
from repro.errors import FleetError
from repro.serve.scenario import _memory_bound_application
from repro.serve.tenant import TenantSpec
from repro.fleet.chaos import (
    ChaosSchedule,
    DegradeSpec,
    GrayFailureSpec,
    ShardCrashSpec,
)
from repro.fleet.health import HealthConfig
from repro.fleet.metrics import FleetReport
from repro.fleet.router import FleetConfig, FleetRouter
from repro.fleet.shard import ShardSpec
from repro.obs.alerts import BurnRateRule

#: PU classes browned out on the degraded shard (all of pixel7a's, so
#: the shard-local rescheduler has nowhere to flee).
DEGRADED_CLASSES = ("big", "medium", "little", "gpu")

#: Tenant lifetimes cycle through these window counts.  The short ones
#: free shard slots before the first failure hits (which is what lets
#: survivors absorb failover batches); the long ones are still running
#: when the degradation window opens, so the SLO-breach failover has
#: victims to rescue.
WINDOWS_CYCLE = (8, 18, 40)


@dataclass(frozen=True)
class FleetSoakScenario:
    """Parameters of one deterministic fleet soak run."""

    seed: int = 7
    n_shards: int = 4
    n_tenants: int = 12
    platform_name: str = "pixel7a"
    #: Shards cycle through these platform seeds; shards sharing a seed
    #: share one platform object and one plan cache.
    platform_seeds: Tuple[int, ...] = (7, 11)
    window_tasks: int = 6
    stage_count: int = 3
    gray_shard: str = "soc2"
    gray_start: int = 8
    gray_end: int = 16
    crash_shard: str = "soc1"
    crash_tick: int = 14
    rejoin_tick: int = 20
    degrade_shard: str = "soc3"
    degrade_start: int = 22
    degrade_end: int = 60
    degrade_busy: float = 0.95
    degrade_demand_gbps: float = 16.0
    #: Relative SLO: a shard breaches when its mean window-latency
    #: ratio to first-window baselines exceeds slo_factor for
    #: slo_breach_ticks consecutive ticks.  1.5x sits above normal
    #: co-tenant interference swing but well under the brownout's hit.
    slo_factor: float = 1.5
    slo_breach_ticks: int = 2
    max_ticks: int = 96

    def __post_init__(self) -> None:
        if self.n_shards < 4:
            raise FleetError(
                "the fleet soak needs >= 4 shards (three failure "
                "domains plus at least one untouched survivor)"
            )
        if self.n_tenants < 12:
            raise FleetError(
                "the fleet soak needs >= 12 tenants for meaningful "
                "failover batches"
            )
        names = set(self.shard_names())
        for role, shard in (("gray", self.gray_shard),
                            ("crash", self.crash_shard),
                            ("degrade", self.degrade_shard)):
            if shard not in names:
                raise FleetError(
                    f"{role} shard {shard!r} is not one of {sorted(names)}"
                )

    def shard_names(self) -> Tuple[str, ...]:
        return tuple(f"soc{i}" for i in range(self.n_shards))

    def chaos(self) -> ChaosSchedule:
        return ChaosSchedule(
            crashes=[ShardCrashSpec(
                shard=self.crash_shard,
                at_tick=self.crash_tick,
                rejoin_tick=self.rejoin_tick,
            )],
            grays=[GrayFailureSpec(
                shard=self.gray_shard,
                start_tick=self.gray_start,
                end_tick=self.gray_end,
            )],
            degradations=[DegradeSpec(
                shard=self.degrade_shard,
                start_tick=self.degrade_start,
                end_tick=self.degrade_end,
                busy={c: self.degrade_busy for c in DEGRADED_CLASSES},
                demand_gbps=self.degrade_demand_gbps,
            )],
        )


def build_fleet(scenario: FleetSoakScenario,
                failover: bool = True,
                attribution: bool = False,
                burn: Optional[BurnRateRule] = None) -> FleetRouter:
    """A fully-loaded fleet, ready to :meth:`~FleetRouter.run`.

    Tenants cycle through three lifetimes (8/18/28 windows - the short
    ones free slots before the first failure hits, which is what lets
    the survivors absorb failover batches), three priorities (0 is shed
    first), and four shared applications (two compute-bound synthetic,
    two memory-bound streaming; three tenants per application, so the
    per-platform plan caches get real hit traffic).
    """
    router = FleetRouter(
        [ShardSpec(
            name=name,
            platform_name=scenario.platform_name,
            platform_seed=scenario.platform_seeds[
                i % len(scenario.platform_seeds)],
        ) for i, name in enumerate(scenario.shard_names())],
        seed=scenario.seed,
        config=FleetConfig(
            max_ticks=scenario.max_ticks,
            failover=failover,
            health=HealthConfig(
                slo_factor=scenario.slo_factor,
                slo_breach_ticks=scenario.slo_breach_ticks,
            ),
            attribution=attribution,
            burn=burn,
        ),
        chaos=scenario.chaos(),
    )
    for i in range(scenario.n_tenants):
        app_seed = scenario.seed + (i % 4)
        if i % 2 == 0:
            application = build_synthetic_application(
                seed=app_seed, stage_count=scenario.stage_count,
            )
        else:
            application = _memory_bound_application(
                app_seed, scenario.stage_count,
            )
        router.submit(TenantSpec(
            name=f"tenant-{i:02d}",
            application=application,
            priority=i % 3,
            windows=WINDOWS_CYCLE[i % 3],
            window_tasks=scenario.window_tasks,
        ))
    return router


def run_fleet_soak(
    scenario: FleetSoakScenario,
    failover: bool = True,
    timeout_s: float = 600.0,
    attribution: bool = False,
    burn: Optional[BurnRateRule] = None,
) -> Tuple[FleetRouter, FleetReport]:
    """Build, run, and drain one fleet soak; returns (router, report).

    ``attribution``/``burn`` arm per-window blame decomposition and
    per-shard burn-rate alerting (both off by default, so the chaos
    soak's byte-diff arms are unchanged; ``repro top`` turns both on).
    """
    router = build_fleet(scenario, failover=failover,
                         attribution=attribution, burn=burn)
    report = router.run(timeout_s=timeout_s)
    return router, report
