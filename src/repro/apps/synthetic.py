"""Parameterized synthetic pipeline generator.

Real evaluations need more pipelines than any paper ships.  This module
generates random-but-controlled streaming applications for stress-testing
the optimizer and the runtime:

* ``stage_count`` and ``heterogeneity`` shape the schedule-search space;
* ``heterogeneity`` in [0, 1] controls how differently stages behave
  across PU classes (0: every stage is PU-agnostic, so only pipeline
  balance matters; 1: stages have strong, conflicting PU affinities,
  the regime where BetterTogether shines);
* generated stages carry executable (trivial but real) kernels so both
  runtime back-ends accept them.

Determinism: everything derives from ``seed``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.stage import Application, Stage
from repro.errors import KernelError
from repro.kernels.base import CPU, GPU
from repro.soc.workprofile import WorkProfile

#: Structural archetypes a synthetic stage can draw from, spanning the
#: paper's stage classes (Table 1's "characteristics").
_ARCHETYPES = (
    # (divergence, irregularity, parallel_fraction, cpu_eff, gpu_eff)
    ("dense-map", 0.03, 0.05, 1.0, 0.1, 0.5),
    ("streaming", 0.05, 0.10, 1.0, 0.45, 0.40),
    ("sparse-gather", 0.35, 0.55, 1.0, 0.45, 0.25),
    ("traversal", 0.45, 0.60, 0.97, 0.40, 0.15),
    ("reduction", 0.15, 0.10, 0.90, 0.45, 0.30),
)


def _stage_kernel(index: int):
    """A real (if tiny) kernel: mixes the payload deterministically so
    functional runs have observable, order-sensitive effects."""

    def kernel(task):
        payload = task["payload"]
        payload += np.float32(index + 1)
        payload *= np.float32(1.0 + 1e-3 * (index + 1))

    return kernel


def build_synthetic_application(
    seed: int,
    stage_count: int = 8,
    heterogeneity: float = 0.7,
    mean_flops: float = 30e6,
    spread: float = 4.0,
) -> Application:
    """Generate a deterministic synthetic pipeline.

    Args:
        seed: Drives every random choice.
        stage_count: Number of pipeline stages.
        heterogeneity: [0, 1] - how strongly stages differ in their PU
            affinities (archetype contrast).
        mean_flops: Geometric mean of per-stage arithmetic work.
        spread: Max multiplicative deviation of a stage's work from the
            mean (log-uniform in [1/spread, spread]).
    """
    if stage_count < 1:
        raise KernelError("stage_count must be >= 1")
    if not 0.0 <= heterogeneity <= 1.0:
        raise KernelError("heterogeneity must be in [0, 1]")
    if spread < 1.0:
        raise KernelError("spread must be >= 1")
    rng = np.random.default_rng(400_000 + seed)
    stages: List[Stage] = []
    for index in range(stage_count):
        name, div, irr, pf, cpu_eff, gpu_eff = _ARCHETYPES[
            rng.integers(0, len(_ARCHETYPES))
        ]
        blend = heterogeneity
        # At zero heterogeneity every stage collapses to the neutral
        # 'streaming' archetype; at one, the archetype speaks fully.
        neutral = _ARCHETYPES[1]
        div = blend * div + (1 - blend) * neutral[1]
        irr = blend * irr + (1 - blend) * neutral[2]
        pf = blend * pf + (1 - blend) * neutral[3]
        cpu_eff = blend * cpu_eff + (1 - blend) * neutral[4]
        gpu_eff = blend * gpu_eff + (1 - blend) * neutral[5]
        flops = mean_flops * float(
            np.exp(rng.uniform(-np.log(spread), np.log(spread)))
        )
        work = WorkProfile(
            flops=flops,
            bytes_moved=flops / float(rng.uniform(2.0, 20.0)),
            parallelism=float(rng.uniform(1e3, 1e6)),
            parallel_fraction=pf,
            divergence=div,
            irregularity=irr,
            cpu_efficiency=max(cpu_eff, 0.01),
            gpu_efficiency=max(gpu_eff, 0.01),
        )
        kernel = _stage_kernel(index)
        stages.append(
            Stage(
                name=f"{name}-{index}",
                work=work,
                kernels={CPU: kernel, GPU: kernel},
            )
        )

    def make_task(task_seed: int) -> Dict[str, np.ndarray]:
        task_rng = np.random.default_rng(500_000 + task_seed)
        return {"payload": task_rng.random(256).astype(np.float32)}

    return Application(
        name=f"synthetic-{seed}-n{stage_count}",
        stages=stages,
        make_task=make_task,
        description=f"Synthetic pipeline (heterogeneity="
                    f"{heterogeneity:.2f})",
        input_kind="Synthetic",
    )


def build_bandwidth_bound_application(
    seed: int,
    stage_count: int = 3,
    flops_per_byte: float = 0.5,
    mean_flops: float = 20e6,
) -> Application:
    """Generate a DRAM-saturating streaming pipeline.

    Every stage moves far more bytes than it computes
    (``flops_per_byte`` well under the roofline ridge), so a single
    instance draws a large share of the SoC's memory bandwidth.  One
    or two co-located instances fit under the DRAM ceiling; packing
    more pushes the *sum* of demands past it, and the fair-share
    memory controller then collapses everyone's memory-bound phase at
    once.  This is the workload class that makes overload superlinear
    - and interference-aware admission control observably better than
    admit-everything - so the traffic layer mixes it into its tenant
    population.
    """
    if stage_count < 1:
        raise KernelError("stage_count must be >= 1")
    if flops_per_byte <= 0.0:
        raise KernelError("flops_per_byte must be positive")

    def kernel(task):
        task["payload"] += np.float32(1.0)

    rng = np.random.default_rng(700_000 + seed)
    stages: List[Stage] = []
    for index in range(stage_count):
        flops = mean_flops * float(rng.uniform(0.85, 1.15))
        stages.append(Stage(
            name=f"copy-{index}",
            work=WorkProfile(
                flops=flops,
                bytes_moved=flops / flops_per_byte,
                parallelism=2e5,
                parallel_fraction=0.98,
                divergence=0.05,
                irregularity=0.10,
                cpu_efficiency=0.45,
                gpu_efficiency=0.30,
            ),
            kernels={CPU: kernel, GPU: kernel},
        ))

    def make_task(task_seed: int) -> Dict[str, np.ndarray]:
        task_rng = np.random.default_rng(800_000 + task_seed)
        return {"payload": task_rng.random(256).astype(np.float32)}

    return Application(
        name=f"bwbound-{seed}-n{stage_count}",
        stages=stages,
        make_task=make_task,
        description=f"Bandwidth-bound pipeline ({flops_per_byte:.2f} "
                    "flop/byte)",
        input_kind="Synthetic",
    )
