"""Baselines: homogeneous CPU/GPU deployments, the data-parallel
alternative, and prior-work performance-model flows."""

from repro.baselines.data_parallel import (
    DataParallelResult,
    data_parallel_baseline,
    excluded_pus,
    split_evenness,
)
from repro.baselines.homogeneous import (
    BaselineResult,
    cpu_only_schedule,
    gpu_only_schedule,
    measure_baselines,
    measure_schedule,
    per_stage_baseline_times,
)
from repro.baselines.metaheuristic import MetaheuristicOptimizer
from repro.baselines.prior_models import (
    isolated_latency_only_candidates,
    latency_only_candidates,
)

__all__ = [
    "BaselineResult",
    "DataParallelResult",
    "MetaheuristicOptimizer",
    "cpu_only_schedule",
    "data_parallel_baseline",
    "excluded_pus",
    "gpu_only_schedule",
    "isolated_latency_only_candidates",
    "latency_only_candidates",
    "measure_baselines",
    "measure_schedule",
    "per_stage_baseline_times",
    "split_evenness",
]
