"""Failover: drain a failed shard, re-admit its tenants fleet-wide.

Triggered by the router when the health monitor declares a shard dead
(crash or gray failure) or when a sustained SLO breach makes a live
shard not worth staying on.  The coordinator

1. **evacuates** every live tenant of the shard (withdrawing them from
   a still-live server, or simply adopting their fleet-side state when
   the server crashed under them), then
2. **relocates** the displaced batch onto surviving shards through the
   regular admission path (:meth:`PipelineServer.try_admit`, i.e. the
   same ``AdmissionController`` + ``PlacementMap`` as any placement),
   highest priority first.

Relocation of a batch is *atomic*: if any tenant of the batch cannot
be placed, every placement made for the batch in that attempt is
rescinded (:meth:`PipelineServer.rescind` releases the partition and
erases the record), the lowest-priority tenant is shed, and the
smaller batch is retried.  Either a whole batch lands or the fleet
sheds, deterministically, in priority order - there is no state where
half a failover happened.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.serve.admission import ADMIT
from repro.serve.tenant import PENDING
from repro.fleet.tenant import SHED, FleetTenant


class FailoverCoordinator:
    """Drains dying shards and re-places their tenants (or sheds)."""

    def __init__(self, router) -> None:
        # The router owns shards, tenants, and the event spine; the
        # coordinator is its failover strategy, split out for testing.
        self.router = router
        self.failovers = 0

    # ------------------------------------------------------------------
    def evacuate(self, shard, tick: int, cause: str) -> List[FleetTenant]:
        """Pull every live tenant off ``shard``; returns the displaced
        batch, highest priority first (ties: earliest arrival)."""
        displaced: List[FleetTenant] = []
        for tenant in self.router.tenants_on(shard.name):
            if shard.alive:
                shard.server.withdraw(
                    tenant.name,
                    f"fleet failover: {cause}",
                    tick,
                )
            self.router.monitor.forget_tenant(shard.name, tenant.name)
            tenant.shard = None
            tenant.status = PENDING
            tenant.status_detail = f"displaced by failover: {cause}"
            displaced.append(tenant)
        displaced.sort(key=lambda t: (-t.priority, t.arrival))
        return displaced

    def relocate(self, displaced: List[FleetTenant], tick: int,
                 cause: str) -> Tuple[List[FleetTenant], List[FleetTenant]]:
        """Atomically place a displaced batch; returns (placed, shed).

        All-or-nothing per attempt: a partial placement is rolled back
        before the lowest-priority tenant is shed and the rest retried.
        """
        batch = sorted(displaced, key=lambda t: (-t.priority, t.arrival))
        shed: List[FleetTenant] = []
        while batch:
            placed_now: List[Tuple[FleetTenant, object]] = []
            stuck = None
            for tenant in batch:
                choice = self.router.choose_shard(tenant.pending_spec())
                if choice is None:
                    stuck = tenant
                    break
                shard, _ = choice
                decision = shard.server.try_admit(
                    tenant.pending_spec(), tick
                )
                assert decision.action == ADMIT, decision
                placed_now.append((tenant, shard))
            if stuck is None:
                for tenant, shard in placed_now:
                    self.router.commit_placement(
                        tenant, shard, tick, kind="migrate",
                        detail=f"failover: {cause}",
                    )
                return [t for t, _ in placed_now], shed
            # Atomic rollback: undo this attempt's placements entirely.
            for tenant, shard in placed_now:
                shard.server.rescind(tenant.name)
            # Priority-ordered shedding: the lowest priority goes
            # (ties: latest arrival), then the smaller batch retries.
            victim = min(batch, key=lambda t: (t.priority, -t.arrival))
            batch.remove(victim)
            victim.status = SHED
            victim.status_detail = (
                f"shed at tick {tick}: fleet could not absorb the "
                f"failover batch ({cause})"
            )
            shed.append(victim)
            self.router.record_shed(victim, tick, cause)
        return [], shed

    def failover(self, shard, tick: int, cause: str) -> None:
        """Evacuate + relocate one shard; the router's entry point."""
        displaced = self.evacuate(shard, tick, cause)
        if not displaced:
            return
        self.failovers += 1
        self.router.record_failover(shard, tick, cause, len(displaced))
        self.relocate(displaced, tick, cause)
