"""Cross-module integration tests: the whole system, small scale.

These exercise the full Fig. 2 flow - profile, optimize, autotune,
deploy - for every (application, platform) combination, plus the
functional/performance back-end agreement that makes the framework's
measurements trustworthy.
"""

import numpy as np
import pytest

from repro.apps import (
    build_alexnet_dense,
    build_alexnet_sparse,
    build_octree_application,
)
from repro.baselines import measure_baselines
from repro.core import BetterTogether
from repro.runtime import SimulatedPipelineExecutor, ThreadedPipelineExecutor
from repro.soc import all_platforms, estimate_energy, get_platform

APPS = {
    "alexnet-dense": lambda: build_alexnet_dense(),
    "alexnet-sparse": lambda: build_alexnet_sparse(batch=8),
    "octree": lambda: build_octree_application(n_points=10_000),
}


@pytest.fixture(scope="module")
def small_framework_kwargs():
    return dict(repetitions=3, k=6, eval_tasks=8)


class TestFullFlowGrid:
    @pytest.mark.parametrize("app_name", list(APPS))
    @pytest.mark.parametrize(
        "platform_name",
        ["pixel7a", "oneplus11", "jetson_orin_nano",
         "jetson_orin_nano_lp"],
    )
    def test_plan_never_loses_to_baselines(
        self, app_name, platform_name, small_framework_kwargs
    ):
        platform = get_platform(platform_name)
        application = APPS[app_name]()
        plan = BetterTogether(platform, **small_framework_kwargs).run(
            application
        )
        baseline = measure_baselines(application, platform, n_tasks=8)
        # Autotuned deployment is at worst a homogeneous schedule.
        assert plan.measured_latency_s <= baseline.best_latency_s * 1.10

    def test_cpu_only_platform_end_to_end(self, small_framework_kwargs):
        """The Raspberry Pi 5 has one schedulable class: the flow must
        degrade gracefully to the single homogeneous schedule."""
        platform = get_platform("raspberry_pi5")
        application = build_octree_application(n_points=10_000)
        plan = BetterTogether(platform, **small_framework_kwargs).run(
            application
        )
        assert plan.schedule.pu_classes_used == ("big",)
        assert len(plan.optimization.candidates) == 1


class TestBackendAgreement:
    def test_des_and_threads_execute_identical_stage_sets(self):
        """Both back-ends accept the same schedule objects and cover
        every stage exactly once per task."""
        platform = get_platform("pixel7a")
        application = build_octree_application(n_points=2_000)
        plan = BetterTogether(platform, repetitions=2, k=4,
                              eval_tasks=6).run(application)
        chunks = plan.schedule.chunks()

        des = SimulatedPipelineExecutor(application, chunks, platform)
        des_result = des.run(4, record_trace=True)
        assert len(des_result.spans) == len(chunks) * 4

        threaded = ThreadedPipelineExecutor(application, chunks)
        thread_result = threaded.run(4, validate=True)
        total_stage_runs = sum(thread_result.chunk_stage_counts.values())
        assert total_stage_runs == application.num_stages * 4

    def test_threaded_output_identical_for_deployed_vs_reference(self):
        platform = get_platform("oneplus11")
        application = build_alexnet_dense()
        plan = BetterTogether(platform, repetitions=2, k=4,
                              eval_tasks=6).run(application)
        outputs = {}
        for label, chunks in (
            ("deployed", plan.schedule.chunks()),
            ("reference", [type(plan.schedule.chunks()[0])(
                0, application.num_stages, "big")]),
        ):
            logits = []
            ThreadedPipelineExecutor(application, chunks).run(
                2,
                on_complete=lambda task, i, acc=logits: acc.append(
                    np.asarray(task["logits"]).copy()),
            )
            outputs[label] = logits
        for a, b in zip(outputs["deployed"], outputs["reference"]):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)


class TestEnergyIntegration:
    def test_lp_mode_uses_less_energy_per_task(self):
        """The whole point of the 7 W mode: lower energy per task even
        though latency rises."""
        application = build_octree_application(n_points=10_000)
        reports = {}
        for name in ("jetson_orin_nano", "jetson_orin_nano_lp"):
            platform = get_platform(name)
            plan = BetterTogether(platform, repetitions=2, k=4,
                                  eval_tasks=6).run(application)
            result = plan.execute(n_tasks=10)
            reports[name] = (
                estimate_energy(result, platform),
                result.steady_interval_s,
            )
        normal_energy, normal_latency = reports["jetson_orin_nano"]
        lp_energy, lp_latency = reports["jetson_orin_nano_lp"]
        assert lp_energy.per_task_j < normal_energy.per_task_j
        assert lp_latency > normal_latency


class TestDeterminismAcrossRuns:
    def test_full_flow_reproducible(self, small_framework_kwargs):
        platform_a = get_platform("pixel7a")
        platform_b = get_platform("pixel7a")
        application = build_octree_application(n_points=10_000)
        plan_a = BetterTogether(platform_a, **small_framework_kwargs).run(
            application
        )
        plan_b = BetterTogether(platform_b, **small_framework_kwargs).run(
            application
        )
        assert plan_a.schedule.assignments == plan_b.schedule.assignments
        assert plan_a.measured_latency_s == plan_b.measured_latency_s

    def test_different_seed_changes_measurements_not_structure(
        self, small_framework_kwargs
    ):
        application = build_octree_application(n_points=10_000)
        plan_a = BetterTogether(
            get_platform("pixel7a", seed=1), **small_framework_kwargs
        ).run(application)
        plan_b = BetterTogether(
            get_platform("pixel7a", seed=2), **small_framework_kwargs
        ).run(application)
        assert plan_a.measured_latency_s != plan_b.measured_latency_s
        # The underlying hardware model is identical, so the deployed
        # schedules should usually agree; at minimum both are valid.
        assert plan_a.schedule.is_contiguous()
        assert plan_b.schedule.is_contiguous()


class TestPaperScaleSanity:
    def test_all_platforms_register_power_and_affinity(self):
        for platform in all_platforms():
            assert platform.schedulable_classes()
            assert platform.affinity.total_cores() >= 4
