"""Unit tests for the shared kernel helpers."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.base import (
    ceil_div,
    checked_log2,
    dtype_bytes,
    flops_nlogn,
    grid_stride_chunks,
    next_power_of_two,
    require_1d,
    require_same_length,
)


class TestArithmeticHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_bad_divisor(self):
        with pytest.raises(KernelError):
            ceil_div(3, 0)

    def test_checked_log2(self):
        assert checked_log2(1) == 0
        assert checked_log2(1024) == 10

    def test_checked_log2_rejects_non_powers(self):
        with pytest.raises(KernelError):
            checked_log2(6)
        with pytest.raises(KernelError):
            checked_log2(0)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(16) == 16
        assert next_power_of_two(0) == 1

    def test_flops_nlogn(self):
        assert flops_nlogn(1) == 1.0
        assert flops_nlogn(8, per_element=2.0) == pytest.approx(48.0)

    def test_dtype_bytes(self):
        assert dtype_bytes(np.float32) == 4
        assert dtype_bytes(np.int64) == 8


class TestShapeGuards:
    def test_require_1d(self):
        require_1d("x", np.zeros(3))
        with pytest.raises(KernelError):
            require_1d("x", np.zeros((3, 3)))

    def test_require_same_length(self):
        require_same_length("a", np.zeros(2), "b", np.zeros(2))
        with pytest.raises(KernelError):
            require_same_length("a", np.zeros(2), "b", np.zeros(3))


class TestGridStride:
    def test_covers_range(self):
        starts, stride = grid_stride_chunks(100_000)
        covered = set()
        for start in starts:
            covered.update(range(start, min(start + stride, 100_000)))
        assert len(covered) == 100_000

    def test_small_input_single_chunk(self):
        starts, stride = grid_stride_chunks(10)
        assert list(starts) == [0]
        assert stride >= 10
