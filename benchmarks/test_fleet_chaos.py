"""Fleet chaos benchmark: failover's worth under the full soak.

Not a paper artifact - the fleet layer is this repository's scale-out
extension - but it is measured the same way the paper measures its
runtime claims: the identical seeded scenario with the mechanism on and
off, compared on the latency statistic the mechanism is accountable
for.  Failover cannot make any individual window faster; what it buys
is that surviving tenants stop accumulating browned-out windows, which
is exactly the per-segment p95 slowdown gap asserted here.
"""

from benchmarks.conftest import run_once
from repro.eval.metrics import format_table
from repro.fleet import FleetSoakScenario, run_fleet_soak


def test_failover_vs_stranding(benchmark):
    scenario = FleetSoakScenario()

    def evaluate():
        _, with_failover = run_fleet_soak(scenario, failover=True,
                                          timeout_s=600.0)
        _, stranded = run_fleet_soak(scenario, failover=False,
                                     timeout_s=600.0)
        return with_failover, stranded

    with_failover, stranded = run_once(benchmark, evaluate)

    rows = [["", "failover on", "failover off"]]
    for label, pick in [
        ("surviving tenants",
         lambda r: sum(1 for m in r.tenants.values()
                       if m.status == "completed")),
        ("failed tenants",
         lambda r: sum(1 for m in r.tenants.values()
                       if m.status == "failed")),
        ("migrations", lambda r: r.counts.get("migrate", 0)),
        ("p95 slowdown",
         lambda r: f"x{r.surviving_p95_slowdown:.3f}"),
    ]:
        rows.append([label, str(pick(with_failover)),
                     str(pick(stranded))])
    print("\n" + format_table(rows))

    # Failover saves tenants outright...
    on_survivors = sum(1 for m in with_failover.tenants.values()
                       if m.status == "completed")
    off_survivors = sum(1 for m in stranded.tenants.values()
                        if m.status == "completed")
    assert on_survivors > off_survivors
    # ...and the tenants that survive either way degrade strictly less.
    assert (with_failover.surviving_p95_slowdown
            < stranded.surviving_p95_slowdown)
