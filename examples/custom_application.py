#!/usr/bin/env python3
"""Scenario: bring your own pipeline.

BetterTogether is a framework, not a benchmark suite: any streaming
application decomposed into stages with CPU+GPU kernels and a work
characterization can be scheduled.  This example builds a small video
analytics pipeline from scratch - grayscale conversion, 3x3 blur,
Sobel edges, histogram, and a threshold decision - including a non-
linear dependency (the decision consumes both the edge map and the
histogram), wires it through a TaskGraph, and lets the framework map it
onto the OnePlus 11.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro.core import BetterTogether, Stage, TaskGraph
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import WorkProfile, get_platform

FRAME_H, FRAME_W = 480, 640
PIXELS = FRAME_H * FRAME_W


# ----------------------------------------------------------------------
# Kernels (cpu = whole-frame vectorized, gpu = row-tile "workgroups").
# ----------------------------------------------------------------------
def grayscale_cpu(task):
    rgb = task["frame"]
    task["gray"][:] = (
        0.299 * rgb[0] + 0.587 * rgb[1] + 0.114 * rgb[2]
    )


def grayscale_gpu(task):
    rgb, gray = task["frame"], task["gray"]
    for row0 in range(0, FRAME_H, 64):  # one workgroup per 64-row tile
        sl = slice(row0, min(row0 + 64, FRAME_H))
        gray[sl] = (
            0.299 * rgb[0, sl] + 0.587 * rgb[1, sl] + 0.114 * rgb[2, sl]
        )


def _blur(src, dst):
    padded = np.pad(src, 1, mode="edge")
    acc = np.zeros_like(src)
    for dy in range(3):
        for dx in range(3):
            acc += padded[dy:dy + FRAME_H, dx:dx + FRAME_W]
    dst[:] = acc / 9.0


def blur_cpu(task):
    _blur(task["gray"], task["blurred"])


def blur_gpu(task):
    _blur(task["gray"], task["blurred"])  # same math, device-dispatched


def _sobel(src, dst):
    padded = np.pad(src, 1, mode="edge")
    gx = (
        padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2]
    )
    gy = (
        padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:]
    )
    dst[:] = np.hypot(gx, gy)


def sobel_cpu(task):
    _sobel(task["blurred"], task["edges"])


def sobel_gpu(task):
    _sobel(task["blurred"], task["edges"])


def histogram_cpu(task):
    hist, _ = np.histogram(task["blurred"], bins=64, range=(0.0, 1.0))
    task["hist"][:] = hist


def histogram_gpu(task):
    # Device-style: per-tile private histograms, then a reduction.
    partial = np.zeros(64, dtype=np.int64)
    for row0 in range(0, FRAME_H, 64):
        tile = task["blurred"][row0:row0 + 64]
        h, _ = np.histogram(tile, bins=64, range=(0.0, 1.0))
        partial += h
    task["hist"][:] = partial


def decide_cpu(task):
    edge_energy = float(task["edges"].mean())
    dark_fraction = float(task["hist"][:16].sum()) / PIXELS
    task["decision"][0] = 1 if edge_energy > 0.08 and dark_fraction < 0.9 else 0


decide_gpu = decide_cpu  # trivially small either way


# ----------------------------------------------------------------------
# Work characterization for the virtual SoC's cost model.
# ----------------------------------------------------------------------
def map_profile(flops_per_pixel, cpu_eff=0.4, gpu_eff=0.4):
    return WorkProfile(
        flops=flops_per_pixel * PIXELS,
        bytes_moved=8.0 * PIXELS,
        parallelism=float(PIXELS),
        cpu_efficiency=cpu_eff,
        gpu_efficiency=gpu_eff,
    )


def build_video_pipeline():
    graph = TaskGraph()
    graph.add_stage(
        Stage("grayscale", map_profile(5.0, gpu_eff=0.5),
              {"cpu": grayscale_cpu, "gpu": grayscale_gpu}))
    graph.add_stage(
        Stage("blur", map_profile(18.0, gpu_eff=0.5),
              {"cpu": blur_cpu, "gpu": blur_gpu}),
        deps=("grayscale",))
    graph.add_stage(
        Stage("sobel", map_profile(24.0, gpu_eff=0.5),
              {"cpu": sobel_cpu, "gpu": sobel_gpu}),
        deps=("blur",))
    graph.add_stage(
        Stage("histogram",
              WorkProfile(flops=2.0 * PIXELS, bytes_moved=4.0 * PIXELS,
                          parallelism=PIXELS / 8, irregularity=0.4,
                          divergence=0.3, cpu_efficiency=0.4,
                          gpu_efficiency=0.15),
              {"cpu": histogram_cpu, "gpu": histogram_gpu}),
        deps=("blur",))
    # The decision consumes BOTH the edge map and the histogram -
    # a non-linear task graph, linearized by topological sort.
    graph.add_stage(
        Stage("decide",
              WorkProfile(flops=PIXELS / 4, bytes_moved=4.0 * PIXELS,
                          parallelism=64.0, parallel_fraction=0.6,
                          cpu_efficiency=0.5, gpu_efficiency=0.1),
              {"cpu": decide_cpu, "gpu": decide_gpu}),
        deps=("sobel", "histogram"))

    def make_task(seed):
        rng = np.random.default_rng(seed)
        return {
            "frame": rng.random((3, FRAME_H, FRAME_W)).astype(np.float32),
            "gray": np.zeros((FRAME_H, FRAME_W), dtype=np.float32),
            "blurred": np.zeros((FRAME_H, FRAME_W), dtype=np.float32),
            "edges": np.zeros((FRAME_H, FRAME_W), dtype=np.float32),
            "hist": np.zeros(64, dtype=np.int64),
            "decision": np.zeros(1, dtype=np.int64),
        }

    return graph.to_application(
        "video-analytics", make_task=make_task,
        description="Grayscale -> blur -> {sobel, histogram} -> decide",
        input_kind="Frame",
    )


def main() -> None:
    application = build_video_pipeline()
    print(f"stages (topologically linearized): "
          f"{', '.join(application.stage_names)}")

    platform = get_platform("oneplus11")
    plan = BetterTogether(platform, repetitions=10).run(application)
    print(plan.summary())
    print()

    # Run three real frames through the deployed schedule.
    decisions = []
    ThreadedPipelineExecutor(
        application, plan.schedule.chunks()
    ).run(3, on_complete=lambda task, i: decisions.append(
        int(task["decision"][0])))
    print(f"decisions for 3 frames: {decisions}")


if __name__ == "__main__":
    main()
