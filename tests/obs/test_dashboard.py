"""Attribution-on determinism and the ``repro top`` dashboard.

The acceptance bar: fleet/traffic soak reports with attribution (and
burn alerting) enabled are byte-identical across two runs, a burning
shard triggers migration the same way an SLO breach does, and
``repro top --json`` is deterministic for a given (scenario, seed).
"""

import json

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.cli import main
from repro.fleet import (
    ChaosSchedule,
    DegradeSpec,
    FleetConfig,
    FleetRouter,
    ShardSpec,
)
from repro.fleet.health import HealthConfig
from repro.obs.alerts import BurnRateRule
from repro.serve.tenant import TenantSpec
from repro.traffic import FleetOverloadScenario, run_overload_soak

TIMEOUT_S = 300.0


def _traffic_bytes(**kwargs):
    scenario = FleetOverloadScenario(ticks=16)
    _, report = run_overload_soak(scenario, admission=True, **kwargs)
    return json.dumps(report.to_dict(), sort_keys=True)


def _burning_fleet():
    """A small fleet whose s1 browns out, with only burn alerting
    armed to rescue tenants (the SLO-breach path is disabled)."""
    router = FleetRouter(
        [ShardSpec("s0", platform_seed=7),
         ShardSpec("s1", platform_seed=7)],
        seed=7,
        config=FleetConfig(
            max_ticks=48,
            failover=True,
            # slo_breach_ticks is effectively infinite, so any
            # migration off the browned-out shard is the burn rule's.
            health=HealthConfig(slo_factor=1.5, slo_breach_ticks=999),
            attribution=True,
            burn=BurnRateRule(fast_window=2, slow_window=4,
                              budget=0.05, threshold=1.5),
        ),
        chaos=ChaosSchedule(degradations=[DegradeSpec(
            shard="s1", start_tick=4, end_tick=40,
            busy={"big": 0.9, "medium": 0.9, "little": 0.9,
                  "gpu": 0.9},
            demand_gbps=12.0,
        )]),
    )
    for index in range(4):
        router.submit(TenantSpec(
            name=f"tenant-{index}",
            application=build_synthetic_application(
                seed=7 + index, stage_count=2,
            ),
            priority=1,
            windows=12,
            window_tasks=4,
        ))
    return router


class TestByteIdentity:
    def test_traffic_report_with_attribution_is_byte_identical(self):
        rule = BurnRateRule()
        first = _traffic_bytes(attribution=True, burn=rule)
        second = _traffic_bytes(attribution=True, burn=rule)
        assert first == second
        payload = json.loads(first)
        assert "attribution" in payload
        assert "alerts" in payload

    def test_fleet_report_with_attribution_is_byte_identical(self):
        reports = []
        for _ in range(2):
            router = _burning_fleet()
            report = router.run(timeout_s=TIMEOUT_S)
            reports.append(json.dumps(report.to_dict(),
                                      sort_keys=True))
        assert reports[0] == reports[1]

    def test_default_reports_carry_no_attribution_keys(self):
        payload = json.loads(_traffic_bytes())
        assert "attribution" not in payload
        assert "alerts" not in payload


class TestBurnFailover:
    @pytest.fixture(scope="class")
    def report(self):
        return _burning_fleet().run(timeout_s=TIMEOUT_S)

    def test_burning_shard_raises_alerts(self, report):
        assert report.alerts, "brownout never burned"
        keys = {a["key"] for a in report.alerts}
        assert "s1" in keys

    def test_burn_alert_triggers_failover(self, report):
        # The SLO-breach path is disabled (slo_breach_ticks=999), so
        # any failover here was the burn rule acting like a breach.
        counts = report.counts
        assert counts.get("burn_alert", 0) >= 1
        assert counts.get("failover", 0) >= 1

    def test_attribution_summary_rides_in_the_report(self, report):
        data = report.to_dict()
        assert data["attribution"]["windows"] > 0
        assert isinstance(data["attribution"]["top_offenders"], list)


class TestTopCli:
    def _snapshot(self, capsys):
        assert main(["top", "--ticks", "12", "--json"]) == 0
        return capsys.readouterr().out

    def test_top_json_is_deterministic(self, capsys):
        assert self._snapshot(capsys) == self._snapshot(capsys)

    def test_top_json_shape(self, capsys):
        payload = json.loads(self._snapshot(capsys))
        assert payload["scenario"]["ticks"] == 12
        assert set(payload["shards"])
        assert set(payload["tiers"]) == {"gold", "silver", "bronze"}
        assert isinstance(payload["top_offenders"], list)
        assert len(payload["top_offenders"]) <= 5

    def test_top_watch_streams_ticks(self, capsys):
        assert main(["top", "--ticks", "12", "--watch"]) == 0
        out = capsys.readouterr().out
        assert "tick   0" in out
        assert "tick  11" in out
        assert "top interference offenders" in out
