"""BT-Implementer, performance back-end: rate-based discrete-event sim.

Produces every "measured on the device" number in the experiments.  The
pipeline is simulated on the virtual SoC with interference as an
*emergent* quantity: each executing stage progresses at an instantaneous
rate that depends on which other PUs are busy at that moment and how much
DRAM bandwidth they are collectively drawing.  Because co-run conditions
during a real pipeline differ from both profiling modes (isolated: nobody
else runs; interference-heavy: everybody runs flat out), predictions made
from either profiling table can deviate from these measurements - exactly
the gap the paper's Figs. 5-6 quantify and its autotuning level 3 mops up.

Mechanics: each chunk is a server processing tasks in order.  A stage
execution has a fixed overhead phase (dispatch/launch - unaffected by
interference) followed by a work phase whose remaining work drains at
``rate = interference.speed_multiplier(...)``.  Whenever any stage starts
or finishes, the active set changes and all rates are recomputed - a
standard piecewise-constant-rate DES.

Multi-buffering: ``depth`` TaskObjects circulate; the first chunk may only
admit task ``t`` once fewer than ``depth`` tasks are in flight, mirroring
the recycling queue of section 3.4.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stage import Application, Chunk
from repro.errors import PipelineError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.runtime.faults import FaultInjector
from repro.runtime.trace import Span, record_span
from repro.soc.interference import ExternalLoad, external_co_load
from repro.soc.platform import Platform

#: Relative run-to-run jitter of a single stage execution (smaller than
#: the timer's measurement noise; real kernels are quite repeatable).
_EXEC_NOISE_SIGMA = 0.01

_IDLE = -1


@dataclass
class SimulatedRunResult:
    """Outcome of a simulated pipeline run.

    Attributes:
        n_tasks: Tasks streamed through.
        total_s: Virtual time from start to last completion.
        completion_times_s: Per-task completion timestamps.
        steady_interval_s: Steady-state per-task interval (the pipeline's
            effective latency; the quantity Table 3/4 report per task).
        chunk_busy_s: Busy virtual seconds per chunk index.
        chunk_pu: PU class per chunk index.
        spans: Per-(chunk, task) execution spans when tracing was
            requested (``run(..., record_trace=True)``); empty otherwise.
        arrival_times_s: When each task became available.  All zero for
            the default backlogged run; set by ``arrival_period_s``.
    """

    n_tasks: int
    total_s: float
    completion_times_s: List[float]
    steady_interval_s: float
    chunk_busy_s: Dict[int, float] = field(default_factory=dict)
    chunk_pu: Dict[int, str] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    arrival_times_s: List[float] = field(default_factory=list)

    def end_to_end_latencies_s(self) -> List[float]:
        """Per-task arrival-to-completion latency.

        For a backlogged run (all arrivals at 0) this is dominated by
        queueing behind earlier tasks; with a real arrival period it is
        the sensor-to-result latency a deployment cares about.
        """
        arrivals = self.arrival_times_s or [0.0] * self.n_tasks
        return [
            completion - arrival
            for completion, arrival in zip(self.completion_times_s,
                                           arrivals)
        ]

    def keeps_up_with_arrivals(self, slack: float = 1.5) -> bool:
        """Whether end-to-end latency stays bounded (no divergent queue):
        the last task's latency must not exceed ``slack`` times the
        median - a growing backlog shows up as a rising tail."""
        latencies = self.end_to_end_latencies_s()
        if len(latencies) < 4:
            return True
        median = sorted(latencies)[len(latencies) // 2]
        return latencies[-1] <= slack * max(median, 1e-12)

    @property
    def throughput_tasks_per_s(self) -> float:
        if self.steady_interval_s <= 0:
            return float("inf")
        return 1.0 / self.steady_interval_s

    def utilization(self, chunk_index: int) -> float:
        """Busy fraction of the run for one chunk."""
        if self.total_s <= 0:
            return 0.0
        return self.chunk_busy_s.get(chunk_index, 0.0) / self.total_s


@dataclass
class _StageCost:
    overhead_s: float
    work_s: float
    memory_boundedness: float
    demand_gbps: float


class _ChunkServer:
    """Execution state of one chunk's dispatcher."""

    def __init__(self, index: int, chunk: Chunk,
                 stage_costs: List[_StageCost]):
        self.index = index
        self.chunk = chunk
        self.stage_costs = stage_costs
        self.task = _IDLE
        self.stage = 0
        self.in_overhead = True
        self.remaining = 0.0
        self.noise_scale = 1.0
        self.ready: List[int] = []  # upstream-completed task ids, FIFO
        self.busy_s = 0.0

    @property
    def idle(self) -> bool:
        return self.task == _IDLE

    def begin_task(self, task_id: int, noise_scale_fn) -> None:
        self.task = task_id
        self.stage = 0
        self._enter_stage(noise_scale_fn)

    def _enter_stage(self, noise_scale_fn) -> None:
        cost = self.stage_costs[self.stage]
        self.in_overhead = cost.overhead_s > 0.0
        self.noise_scale = noise_scale_fn(self.task, self.stage)
        if self.in_overhead:
            self.remaining = cost.overhead_s
        else:
            self.remaining = cost.work_s * self.noise_scale

    def advance(self, dt: float, rate: float) -> None:
        self.remaining -= dt * rate
        self.busy_s += dt

    def finished_phase(self) -> bool:
        return self.remaining <= 1e-15

    def next_phase(self, noise_scale_fn) -> Optional[int]:
        """Move to the next phase/stage.  Returns the completed task id
        when the whole chunk is done with it, else None."""
        if self.in_overhead:
            self.in_overhead = False
            cost = self.stage_costs[self.stage]
            self.remaining = cost.work_s * self.noise_scale
            if self.remaining > 1e-15:
                return None
        self.stage += 1
        if self.stage < len(self.stage_costs):
            self._enter_stage(noise_scale_fn)
            return None
        done = self.task
        self.task = _IDLE
        return done


class SimulatedPipelineExecutor:
    """Simulate a schedule's pipeline execution on a virtual platform.

    Args:
        application: Provides the per-stage work profiles.
        chunks: Contiguous chunk decomposition of the schedule.
        platform: The virtual SoC (ground-truth oracle).
        depth: Multi-buffering depth (TaskObjects in flight); defaults to
            ``len(chunks) + 1``.
        fault_injector: Optional fault-injection layer
            (:mod:`repro.runtime.faults`): slowdowns and transient
            kernel faults scale per-stage costs, PU dropout raises
            :class:`~repro.errors.PuFailureError` mid-run.
        external_load: Optional
            :class:`~repro.soc.interference.ExternalLoad` describing
            co-runners outside this pipeline (other tenants on a
            shared SoC, injected interference drift).  External busy
            load on other classes raises the DVFS co-load, external
            bandwidth demand contends on the memory controller, and
            external load on a chunk's *own* class divides its rate by
            ``1 + fraction`` (time-sharing).
        tenant: Optional tenant/job id stamped on recorded trace spans
            so multi-tenant Gantt charts can separate the streams.
    """

    def __init__(
        self,
        application: Application,
        chunks: Sequence[Chunk],
        platform: Platform,
        depth: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        external_load: Optional[ExternalLoad] = None,
        tenant: Optional[str] = None,
    ):
        from repro.runtime.pipeline import _check_chunk_cover

        _check_chunk_cover(application, chunks)
        for chunk in chunks:
            if chunk.pu_class not in platform.pu_classes():
                raise PipelineError(
                    f"{platform.name} has no PU class {chunk.pu_class!r}"
                )
        self.application = application
        self.chunks = list(chunks)
        self.platform = platform
        self.depth = depth if depth is not None else len(self.chunks) + 1
        if self.depth < 1:
            raise PipelineError("multi-buffering depth must be >= 1")
        self._servers = [
            _ChunkServer(i, chunk, self._costs_for(chunk))
            for i, chunk in enumerate(self.chunks)
        ]
        self._schedule_key = "|".join(
            f"{c.pu_class}:{c.start}-{c.stop}" for c in self.chunks
        )
        self._injector = fault_injector
        self._external = (
            None if external_load is None or external_load.is_empty
            else external_load
        )
        self.tenant = tenant
        # (task, stage) -> jitter scale; the digest + RNG construction
        # dominates the DES hot path without it.
        self._noise_cache: Dict[Tuple[int, int], float] = {}

    def _costs_for(self, chunk: Chunk) -> List[_StageCost]:
        costs = []
        for index in chunk.stage_indices:
            stage = self.application.stages[index]
            breakdown = self.platform.isolated_breakdown(
                stage.work, chunk.pu_class
            )
            costs.append(
                _StageCost(
                    overhead_s=breakdown.overhead_s,
                    work_s=max(breakdown.compute_s, breakdown.memory_s),
                    memory_boundedness=breakdown.memory_boundedness,
                    demand_gbps=breakdown.demand_bw_gbps(
                        stage.work.bytes_moved
                    ),
                )
            )
        return costs

    # ------------------------------------------------------------------
    def _noise_scale(self, task_id: int, stage: int) -> float:
        key = (task_id, stage)
        cached = self._noise_cache.get(key)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            f"{self.platform.name}|{self._schedule_key}|{task_id}|{stage}"
            .encode(),
            digest_size=8,
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "little"))
        sigma = _EXEC_NOISE_SIGMA
        scale = float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
        self._noise_cache[key] = scale
        return scale

    def _make_scale_fn(
        self, server: _ChunkServer,
    ) -> Callable[[int, int], float]:
        """Per-server phase-scale function: jitter plus injected faults.

        The fault hooks key on *global* stage indices, which only the
        server's chunk offset can recover from the DES's local ones.
        """
        if self._injector is None:
            return self._noise_scale

        def scale(task_id: int, local_stage: int) -> float:
            return self._noise_scale(task_id, local_stage) * (
                self._injector.sim_cost_scale(
                    server.chunk.pu_class,
                    server.chunk.start + local_stage,
                    task_id,
                )
            )

        return scale

    def run(self, n_tasks: int,
            record_trace: bool = False,
            arrival_period_s: Optional[float] = None) -> SimulatedRunResult:
        """Stream ``n_tasks`` through the pipeline in virtual time.

        Args:
            n_tasks: Tasks to stream.
            record_trace: Also record per-(chunk, task) execution spans
                for Gantt rendering (:mod:`repro.runtime.trace`).
            arrival_period_s: When given, task ``t`` only becomes
                available at ``t * arrival_period_s`` (a fixed-rate
                sensor); the default ``None`` models a pre-filled
                backlog, the paper's measurement condition.
        """
        if n_tasks < 1:
            raise PipelineError("n_tasks must be >= 1")
        if arrival_period_s is not None and arrival_period_s < 0:
            raise PipelineError("arrival_period_s must be >= 0")
        arrivals = [
            (arrival_period_s or 0.0) * t for t in range(n_tasks)
        ]
        for server in self._servers:
            server.task = _IDLE
            server.ready.clear()
            server.busy_s = 0.0

        scale_fns = [self._make_scale_fn(s) for s in self._servers]
        now = 0.0
        issued = 0
        completed: List[float] = []
        spans: List[Span] = []
        span_starts: Dict[int, float] = {}
        total_other = max(len(self.platform.pu_classes()) - 1, 0)

        while len(completed) < n_tasks:
            # Admit work.
            first = self._servers[0]
            if (
                first.idle
                and issued < n_tasks
                and issued - len(completed) < self.depth
                and arrivals[issued] <= now + 1e-15
            ):
                first.begin_task(issued, scale_fns[0])
                if record_trace:
                    span_starts[first.index] = now
                issued += 1
            for server in self._servers[1:]:
                if server.idle and server.ready:
                    server.begin_task(server.ready.pop(0),
                                      scale_fns[server.index])
                    if record_trace:
                        span_starts[server.index] = now

            active = [s for s in self._servers if not s.idle]
            if not active:
                if (
                    issued < n_tasks
                    and arrivals[issued] > now
                    and issued - len(completed) < self.depth
                ):
                    now = arrivals[issued]  # idle until the next arrival
                    continue
                raise PipelineError(
                    "pipeline deadlock: nothing active, tasks pending"
                )

            # Instantaneous rates under the current co-run condition,
            # internal (this pipeline's active chunks) plus external
            # (co-tenants / injected drift on the shared SoC).
            busy_classes = {s.chunk.pu_class for s in active}
            total_demand = sum(
                s.stage_costs[s.stage].demand_gbps
                for s in active
                if not s.in_overhead
            )
            if self._external is not None:
                total_demand += self._external.demand_gbps
            rates: Dict[int, float] = {}
            for server in active:
                if server.in_overhead:
                    rates[server.index] = 1.0
                    continue
                cost = server.stage_costs[server.stage]
                co_load = external_co_load(
                    busy_classes, server.chunk.pu_class,
                    self._external, total_other,
                )
                rate = self.platform.instantaneous_rate(
                    memory_boundedness=cost.memory_boundedness,
                    pu_class=server.chunk.pu_class,
                    demand_gbps=cost.demand_gbps,
                    total_demand_gbps=total_demand,
                    co_load=co_load,
                )
                if self._external is not None:
                    # A foreign co-runner on the *same* class
                    # time-shares the cluster (fair-share split).
                    share = self._external.busy.get(
                        server.chunk.pu_class, 0.0
                    )
                    if share > 0.0:
                        rate /= 1.0 + share
                rates[server.index] = rate

            # Advance to the next phase completion (or next arrival,
            # whichever lets the first chunk admit sooner).
            dt = min(
                server.remaining / rates[server.index] for server in active
            )
            dt = max(dt, 0.0)
            if (
                first.idle
                and issued < n_tasks
                and issued - len(completed) < self.depth
                and arrivals[issued] > now
            ):
                dt = min(dt, arrivals[issued] - now)
            now += dt
            for server in active:
                server.advance(dt, rates[server.index])

            # Process completions (any server whose phase drained).
            for position, server in enumerate(self._servers):
                if server.idle or not server.finished_phase():
                    continue
                previous_task = server.task
                done_task = server.next_phase(scale_fns[position])
                if done_task is None:
                    continue
                if record_trace:
                    spans.append(record_span(
                        chunk_index=server.index,
                        pu_class=server.chunk.pu_class,
                        task_id=previous_task,
                        start_s=span_starts.pop(server.index, now),
                        end_s=now,
                        tenant=self.tenant,
                    ))
                if position + 1 < len(self._servers):
                    self._servers[position + 1].ready.append(done_task)
                else:
                    completed.append(now)

        # Observability is strictly post-hoc: one guard check per run
        # (never per event), so the DES loop above stays allocation-free
        # when tracing is off - the overhead benchmark pins this down.
        trc = tracer()
        if trc.enabled:
            with trc.span("simulator.run", "runtime",
                          n_tasks=n_tasks, tenant=self.tenant,
                          total_s=now) as run_id:
                pass
            trc.emit_virtual_spans(spans, now, parent_id=run_id)
            reg = metrics()
            reg.counter("sim.runs")
            reg.observe("sim.total_s", now)

        steady = self._steady_interval(completed)
        return SimulatedRunResult(
            n_tasks=n_tasks,
            total_s=now,
            completion_times_s=completed,
            steady_interval_s=steady,
            chunk_busy_s={s.index: s.busy_s for s in self._servers},
            chunk_pu={s.index: s.chunk.pu_class for s in self._servers},
            spans=spans,
            arrival_times_s=arrivals,
        )

    def _steady_interval(self, completions: Sequence[float]) -> float:
        """Per-task interval after pipeline fill (warmup excluded, like
        the paper's measurements excluding GPU initialization)."""
        n = len(completions)
        if n == 1:
            return completions[0]
        warm = min(self.depth, n - 1)
        span = completions[-1] - completions[warm - 1]
        return span / (n - warm)

    def measure_per_task_latency(self, n_tasks: int = 30) -> float:
        """One noisy timer observation of the steady per-task latency
        (the number the paper's 30-task runs report)."""
        result = self.run(n_tasks)
        rng = self.platform.measurement_rng(
            "pipeline", self._schedule_key, n_tasks
        )
        return self.platform.measure(result.steady_interval_s, rng)
