#!/usr/bin/env python3
"""Scenario: interrogating the scheduler before trusting it.

A performance engineer rarely deploys a black-box schedule.  This
example shows the interrogation workflow on the stereo-depth pipeline
(the extension workload) targeting the Google Pixel 7a:

1. *Is there anything to gain?* - per-stage affinity spreads and the
   model-level speedup bound.
2. *What did the optimizer pick, and why?* - per-chunk breakdown,
   bottleneck, gapness, pipelining gain.
3. *What would the runner-up schedules do?* - explanations for the next
   candidates in the same tier.
4. *Does the pipeline actually overlap?* - the execution Gantt chart.

Run:  python examples/whatif_analysis.py
"""

from repro.apps import build_stereo_application
from repro.core import BetterTogether
from repro.eval import (
    explain_schedule,
    format_affinity_report,
    format_explanation,
    speedup_bounds,
    stage_affinity_report,
)
from repro.runtime import SimulatedPipelineExecutor, format_gantt
from repro.soc import get_platform


def main() -> None:
    platform = get_platform("pixel7a")
    application = build_stereo_application()

    framework = BetterTogether(platform, repetitions=10)
    table = framework.profile(application)

    # 1. Is there anything to gain on this platform?
    print("per-stage PU affinities:")
    print(format_affinity_report(stage_affinity_report(application,
                                                       table)))
    bounds = speedup_bounds(
        application, table.restricted(platform.schedulable_classes())
    )
    print(f"\nmodel-level speedup ceiling: {bounds.max_speedup:.2f}x "
          f"(best serial {bounds.best_serial_s * 1e3:.3f} ms, ideal "
          f"parallel {bounds.ideal_parallel_s * 1e3:.3f} ms)")
    print()

    # 2. What did the optimizer pick, and why?
    optimization = framework.optimize(application, table)
    autotune = framework.autotune(application, optimization)
    winner = autotune.measured_best.candidate
    print(f"deployed schedule (measured best, candidate "
          f"#{winner.rank + 1}):")
    print(format_explanation(
        explain_schedule(application, winner.schedule, table)
    ))
    print()

    # 3. The runners-up, for comparison.
    for candidate in optimization.candidates[1:3]:
        explanation = explain_schedule(
            application, candidate.schedule, table
        )
        print(f"candidate #{candidate.rank + 1}: "
              f"{candidate.schedule.describe(application)} -> predicted "
              f"{explanation.predicted_latency_s * 1e3:.3f} ms "
              f"(bottleneck {explanation.bottleneck_chunk})")
    print()

    # 4. Does the deployed pipeline actually overlap?
    executor = SimulatedPipelineExecutor(
        application, winner.schedule.chunks(), platform
    )
    result = executor.run(8, record_trace=True)
    print("execution Gantt (8 frames):")
    print(format_gantt(result.spans))


if __name__ == "__main__":
    main()
