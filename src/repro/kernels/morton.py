"""Stage 1 of the Octree pipeline: Morton (Z-order) encoding.

Converts 3-D points into 30-bit Morton codes by quantizing each axis to 10
bits and interleaving them - the paper's Fig. 3 example kernel.  This is a
perfectly regular DOALL map, the friendliest possible stage for every PU.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import grid_stride_chunks
from repro.soc.workprofile import WorkProfile

#: Bits per axis; 3 x 10 = 30-bit codes fit comfortably in uint32.
AXIS_BITS = 10
AXIS_RANGE = (1 << AXIS_BITS) - 1


def _expand_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 10 bits of each value 3 apart (the classic magic-
    number bit dance from Karras' reference implementation)."""
    v = v.astype(np.uint64)
    v = (v * np.uint64(0x00010001)) & np.uint64(0xFF0000FF)
    v = (v * np.uint64(0x00000101)) & np.uint64(0x0F00F00F)
    v = (v * np.uint64(0x00000011)) & np.uint64(0xC30C30C3)
    v = (v * np.uint64(0x00000005)) & np.uint64(0x49249249)
    return v


def _quantize(points: np.ndarray) -> np.ndarray:
    if points.ndim != 2 or points.shape[1] != 3:
        raise KernelError(f"points must be (n, 3), got {points.shape}")
    clipped = np.clip(points, 0.0, 1.0)
    return np.minimum(
        (clipped * (AXIS_RANGE + 1)).astype(np.uint32), AXIS_RANGE
    )


def morton_encode(point: np.ndarray) -> int:
    """Scalar reference encoder (used by tests as the oracle)."""
    q = _quantize(point.reshape(1, 3))[0]
    code = 0
    for bit in range(AXIS_BITS):
        for axis in range(3):
            code |= ((int(q[axis]) >> bit) & 1) << (3 * bit + axis)
    return code


def morton_encode_cpu(points: np.ndarray, codes: np.ndarray) -> None:
    """OpenMP-style variant: one vectorized pass over all points."""
    q = _quantize(points)
    x = _expand_bits(q[:, 0])
    y = _expand_bits(q[:, 1])
    z = _expand_bits(q[:, 2])
    np.copyto(codes, (x | (y << np.uint64(1)) | (z << np.uint64(2))).astype(np.uint32))


def morton_encode_gpu(points: np.ndarray, codes: np.ndarray) -> None:
    """CUDA-style variant: grid-stride chunks (Fig. 3, Listing 2)."""
    n = len(points)
    starts, stride = grid_stride_chunks(n)
    for start in starts:
        stop = min(start + stride, n)
        q = _quantize(points[start:stop])
        x = _expand_bits(q[:, 0])
        y = _expand_bits(q[:, 1])
        z = _expand_bits(q[:, 2])
        codes[start:stop] = (
            x | (y << np.uint64(1)) | (z << np.uint64(2))
        ).astype(np.uint32)


def morton_work_profile(n_points: int) -> WorkProfile:
    """Work characterization: ~30 bit-ops per point, streaming access.

    Regular, embarrassingly parallel, zero divergence - every PU runs this
    close to its roofline (the reason Fig. 1 shows little spread for the
    regular stages).
    """
    return WorkProfile(
        flops=30.0 * n_points,
        bytes_moved=(12.0 + 4.0) * n_points,  # read xyz f32, write u32
        parallelism=float(max(n_points, 1)),
        parallel_fraction=1.0,
        divergence=0.02,
        irregularity=0.02,
        cpu_efficiency=0.6,
        gpu_efficiency=0.6,
        gpu_launches=1,
    )
